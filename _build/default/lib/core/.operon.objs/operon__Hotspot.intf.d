lib/core/hotspot.mli: Gridmap Operon_geom Operon_optical Rect Selection Signal
