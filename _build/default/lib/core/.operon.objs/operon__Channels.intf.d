lib/core/channels.mli: Assign Operon_optical Params Wdm
