lib/core/assign.ml: Array List Maxflow Mcmf Operon_flow Operon_optical Params Wdm Wdm_place
