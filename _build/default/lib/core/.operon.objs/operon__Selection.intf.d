lib/core/selection.mli: Candidate Operon_geom Operon_optical Params Rect
