lib/core/codesign.mli: Candidate Hypernet Operon_geom Operon_optical Operon_steiner Params Segment Topology
