lib/core/assign.mli: Operon_optical Params Wdm Wdm_place
