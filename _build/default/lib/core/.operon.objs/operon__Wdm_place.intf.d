lib/core/wdm_place.mli: Operon_optical Params Selection Wdm
