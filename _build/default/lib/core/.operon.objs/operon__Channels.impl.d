lib/core/channels.ml: Array Assign Float Hashtbl List Operon_optical Params Printf Wdm
