lib/core/signal.ml: Array Operon_geom Point Printf Rect
