lib/core/wdm_place.ml: Array Candidate Float Hypernet List Operon_optical Params Selection Wdm
