lib/core/timing.ml: Array Candidate Delay Float List Operon_optical Operon_steiner Operon_util Selection Topology
