lib/core/codesign.ml: Array Bi1s Buffer Candidate Float Hashtbl Hypernet List Loss Operon_optical Operon_steiner Params Printf Rsmt Topology
