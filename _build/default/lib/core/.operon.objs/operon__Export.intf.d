lib/core/export.mli: Channels Flow
