lib/core/ilp_select.mli: Selection
