lib/core/flow.mli: Assign Hypernet Ilp_select Lr_select Operon_optical Operon_util Params Prng Processing Selection Signal Wdm_place
