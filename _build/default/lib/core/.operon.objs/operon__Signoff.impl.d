lib/core/signoff.ml: Array Assign Candidate Float Hashtbl Hypernet List Operon_geom Operon_optical Operon_util Params Point Segment Selection Wdm Wdm_place
