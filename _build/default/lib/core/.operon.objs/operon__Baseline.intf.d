lib/core/baseline.mli: Hypernet Operon_optical Params Selection Signal
