lib/core/timing.mli: Candidate Delay Operon_optical Selection
