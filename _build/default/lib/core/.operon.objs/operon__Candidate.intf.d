lib/core/candidate.mli: Hypernet Operon_geom Operon_optical Operon_steiner Params Segment Topology
