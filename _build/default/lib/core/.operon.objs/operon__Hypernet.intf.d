lib/core/hypernet.mli: Operon_geom Point Rect
