lib/core/selection.ml: Array Candidate List Operon_geom Operon_optical Params Printf Rect Segment
