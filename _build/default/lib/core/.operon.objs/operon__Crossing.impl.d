lib/core/crossing.ml: Array Dsu Hashtbl List Operon_geom Operon_graph Point Rect Segment Stdlib
