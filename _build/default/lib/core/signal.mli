(** On-chip signal model (paper Section 2.3).

    Performance-critical signal bits are bound together in {e groups} (bus
    bits between logic blocks and memory interfaces). Each bit is a
    multi-pin net: one driving pin and one or more sink pins. Groups whose
    bit count exceeds the WDM capacity are later split into several hyper
    nets by {!Processing}. *)

open Operon_geom

type bit = {
  source : Point.t;  (** driving pin *)
  sinks : Point.t array;  (** at least one sink pin *)
}

val bit : source:Point.t -> sinks:Point.t array -> bit
(** Raises [Invalid_argument] when [sinks] is empty. *)

val bit_pins : bit -> Point.t array
(** Source followed by sinks. *)

type group = {
  name : string;
  bits : bit array;  (** non-empty *)
}

val group : name:string -> bits:bit array -> group

type design = {
  die : Rect.t;  (** placement area, cm *)
  groups : group array;
}

val design : die:Rect.t -> groups:group array -> design
(** Raises [Invalid_argument] if any pin lies outside the die. *)

val net_count : design -> int
(** Total signal bits — the paper's "#Net" column. *)

val pin_count : design -> int
(** Total electrical pins over all bits. *)

val group_bbox : group -> Rect.t
(** Bounding box over every pin of the group. *)
