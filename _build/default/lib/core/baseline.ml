open Operon_geom
open Operon_optical
open Operon_steiner

let electrical_wirelength _params (design : Signal.design) =
  Array.fold_left
    (fun acc (g : Signal.group) ->
      Array.fold_left
        (fun acc b -> acc +. Rsmt.wirelength (Signal.bit_pins b))
        acc g.Signal.bits)
    0.0 design.Signal.groups

let electrical_power params design =
  Params.electrical_unit_energy params *. electrical_wirelength params design

type glow_result = {
  ctx : Selection.ctx;
  choice : int array;
  power : float;
  optical_nets : int;
  electrical_nets : int;
  underestimated : int;
}

(* Fully-optical candidate on the Euclidean BI1S baseline. *)
let all_optical params hnet =
  let terminals = Hypernet.centers hnet in
  if Array.length terminals <= 1 then None
  else begin
    let topo = Bi1s.build Topology.L2 terminals ~root:0 in
    let labels = Array.make (Topology.node_count topo) Candidate.Optical in
    Some (Candidate.of_labels params hnet topo labels)
  end

(* GLOW's loss view of one path: propagation plus crossing against the
   other currently-optical nets — but no splitting loss, GLOW's blind
   spot. *)
let glow_path_loss params (c : Candidate.t) p coupled =
  let path = c.Candidate.paths.(p) in
  let wl =
    Array.fold_left (fun acc s -> acc +. Segment.length s) 0.0 path.Candidate.segments
  in
  let crossing =
    List.fold_left
      (fun acc other -> acc +. Candidate.crossing_loss_on_path params c p other)
      0.0 coupled
  in
  Loss.propagation params wl +. crossing

let glow_net_loss params c coupled =
  let worst = ref 0.0 in
  Array.iteri
    (fun p _ -> worst := Float.max !worst (glow_path_loss params c p coupled))
    c.Candidate.paths;
  !worst

let glow params hnets =
  let n = Array.length hnets in
  let optical = Array.map (all_optical params) hnets in
  let cand_lists =
    Array.mapi
      (fun i hnet ->
        let terminals = Hypernet.centers hnet in
        let elec =
          if Array.length terminals <= 1 then
            Candidate.electrical params hnet (Bi1s.mst_tree Topology.L2 terminals ~root:0)
          else Candidate.electrical params hnet (Rsmt.tree terminals ~root:0)
        in
        match optical.(i) with None -> [ elec ] | Some o -> [ o; elec ])
      hnets
  in
  let ctx = Selection.make_ctx params cand_lists in
  (* Start everything on the optical layer, then iterate to a fixed point
     of GLOW's own (splitting-blind) loss model: a net whose propagation +
     crossing loss against the other currently-optical nets exceeds the
     budget falls back to copper. Demoting nets only removes crossings,
     so the iteration is monotone and terminates. *)
  let is_optical = Array.map (fun o -> o <> None) optical in
  let l_max = params.Params.l_max in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if is_optical.(i) then begin
        match optical.(i) with
        | None -> ()
        | Some o ->
            let coupled =
              Array.to_list ctx.Selection.neighbors.(i)
              |> List.filter_map (fun m ->
                     if is_optical.(m) then
                       match optical.(m) with
                       | Some om -> Some om
                       | None -> None
                     else None)
            in
            if glow_net_loss params o coupled > l_max then begin
              is_optical.(i) <- false;
              changed := true
            end
      end
    done
  done;
  let choice = Array.make n 0 in
  let optical_nets = ref 0 and electrical_nets = ref 0 and under = ref 0 in
  Array.iteri
    (fun i _ ->
      if is_optical.(i) then begin
        choice.(i) <- 0;
        incr optical_nets;
        (* Would the net actually be detectable once splitting loss is
           accounted for? GLOW cannot see this. *)
        match optical.(i) with
        | Some o when not (Candidate.loss_feasible params o) -> incr under
        | _ -> ()
      end
      else begin
        choice.(i) <- ctx.Selection.elec_idx.(i);
        incr electrical_nets
      end)
    hnets;
  { ctx;
    choice;
    power = Selection.power ctx choice;
    optical_nets = !optical_nets;
    electrical_nets = !electrical_nets;
    underestimated = !under }
