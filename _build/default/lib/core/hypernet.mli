(** Hyper nets and hyper pins (paper Section 3.1.2).

    A hyper net bundles the bits of one K-Means cluster; its hyper pins are
    gravity centres of neighbouring electrical pins. Replacing individual
    nets by hyper nets shrinks the problem that the co-design, ILP and LR
    stages must handle. *)

open Operon_geom

type hyper_pin = {
  center : Point.t;  (** gravity centre of the member electrical pins *)
  pin_count : int;  (** electrical pins merged into this hyper pin *)
  source_count : int;  (** how many of them are bit drivers *)
}

type t = {
  id : int;  (** dense index across the design *)
  group : int;  (** index of the originating signal group *)
  bits : int;  (** bits bundled (<= WDM capacity after processing) *)
  pins : hyper_pin array;  (** [pins.(root)] is the driving hyper pin *)
  root : int;  (** index of the hyper pin with the most bit drivers *)
}

val make : id:int -> group:int -> bits:int -> pins:hyper_pin array -> t
(** Selects the root as the hyper pin with the highest [source_count]
    (ties to the lowest index). Raises [Invalid_argument] when [pins] is
    empty or [bits <= 0]. *)

val centers : t -> Point.t array
(** Hyper pin centres with the root first — the terminal array handed to
    the Steiner baseline builders (root = terminal 0). *)

val bbox : t -> Rect.t
(** Bounding box of the hyper pin centres. *)

val pin_count : t -> int
(** Number of hyper pins — the paper's "#HPin" accounting unit. *)

val is_trivial : t -> bool
(** Single hyper pin: all pins merged; no routing needed. *)
