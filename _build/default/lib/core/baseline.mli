(** Comparison baselines of Table 1.

    - {e Electrical [14]} (Streak-like): every signal bit routed as
      rectilinear copper; wirelength estimated by RSMT over each bit's
      pins, power by Eq. (6).
    - {e Optical [4]} (GLOW-like): every hyper net routed fully optically
      on its BI1S baseline; the feasibility check follows GLOW in
      considering propagation and crossing loss but {e ignoring splitting
      loss} (the blind spot OPERON fixes); hyper nets failing even that
      check fall back to electrical wires. Because real detection includes
      splitting loss, some GLOW-accepted nets would actually malfunction —
      {!glow_underestimates} counts them. *)

open Operon_optical

val electrical_power : Params.t -> Signal.design -> float
(** Total Table 1 "Electrical" power: sum over bits of RSMT wirelength
    times the per-cm electrical energy. *)

val electrical_wirelength : Params.t -> Signal.design -> float
(** Total RSMT wirelength (cm) of the pure-electrical design. *)

type glow_result = {
  ctx : Selection.ctx;
      (** per hyper net: [all-optical; electrical-fallback] candidates *)
  choice : int array;
  power : float;
  optical_nets : int;  (** hyper nets GLOW kept on the optical layer *)
  electrical_nets : int;  (** hyper nets that fell back to copper *)
  underestimated : int;
      (** optically-routed nets whose true loss (with splitting) violates
          the detection budget — GLOW's blind spot *)
}

val glow : Params.t -> Hypernet.t array -> glow_result
(** Run the GLOW-like flow over processed hyper nets. *)
