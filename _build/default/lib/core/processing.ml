open Operon_geom
open Operon_cluster
open Operon_optical

type config = {
  merge_threshold : float;
  kmeans_max_iter : int;
  kmeans_threshold : float;
}

let default_config =
  { merge_threshold = 0.05; kmeans_max_iter = 50; kmeans_threshold = 1e-3 }

(* A bit is keyed by the centroid of its pins: bits whose pins sit close
   together end up in the same hyper net. *)
let bit_key b = Point.centroid (Signal.bit_pins b)

let hyper_pins_of_cluster config (bits : Signal.bit array) =
  (* Pool every electrical pin of the cluster, remembering which are
     drivers, then merge neighbours bottom-up. *)
  let pins = ref [] and is_source = ref [] in
  Array.iter
    (fun b ->
      pins := b.Signal.source :: !pins;
      is_source := true :: !is_source;
      Array.iter
        (fun s ->
          pins := s :: !pins;
          is_source := false :: !is_source)
        b.Signal.sinks)
    bits;
  let pin_arr = Array.of_list (List.rev !pins) in
  let src_arr = Array.of_list (List.rev !is_source) in
  let merged = Agglom.merge pin_arr ~threshold:config.merge_threshold in
  Array.map
    (fun (hp : Agglom.hyper_pin) ->
      let source_count =
        Array.fold_left (fun acc i -> if src_arr.(i) then acc + 1 else acc) 0 hp.members
      in
      { Hypernet.center = hp.center;
        pin_count = Array.length hp.members;
        source_count })
    merged

let run ?(config = default_config) rng params (design : Signal.design) =
  let out = ref [] in
  let next_id = ref 0 in
  Array.iteri
    (fun gi (g : Signal.group) ->
      let keys = Array.map bit_key g.bits in
      let { Kmeans.clusters; _ } =
        Kmeans.partition rng keys ~capacity:params.Params.wdm_capacity
      in
      Array.iter
        (fun members ->
          let bits = Array.map (fun i -> g.Signal.bits.(i)) members in
          let pins = hyper_pins_of_cluster config bits in
          let hnet =
            Hypernet.make ~id:!next_id ~group:gi ~bits:(Array.length bits) ~pins
          in
          incr next_id;
          out := hnet :: !out)
        clusters)
    design.Signal.groups;
  Array.of_list (List.rev !out)

let stats hnets =
  let nets = Array.fold_left (fun acc h -> acc + h.Hypernet.bits) 0 hnets in
  let hpins = Array.fold_left (fun acc h -> acc + Hypernet.pin_count h) 0 hnets in
  (nets, Array.length hnets, hpins)
