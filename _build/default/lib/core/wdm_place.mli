(** WDM placement (paper Section 4.1).

    Optical point-to-point connections of the selected candidates are
    gathered and greedily packed onto WDM tracks: connections are sorted
    by their perpendicular coordinate and swept once — a connection joins
    the current track when capacity remains and it lies within [dis_u],
    otherwise a new track is opened on it. A legalization pass then pushes
    neighbouring tracks apart to the [dis_l] crosstalk bound. *)

open Operon_optical

type placement = {
  conns : Wdm.conn array;
  tracks : Wdm.track array;
  assignment : int array;  (** [assignment.(conn.id)] = index into [tracks] *)
}

val connections_of_selection : Selection.ctx -> int array -> Wdm.conn array
(** Optical segments of every selected candidate, one connection per
    segment, carrying the hyper net's bit count. Ids are dense. *)

val place : Params.t -> Wdm.conn array -> placement
(** Sweep placement per orientation. Every connection is assigned; the
    number of tracks is the paper's "#Initial WDMs". *)

val legalize : Params.t -> Wdm.track array -> int
(** Enforce the [dis_l] minimum spacing between same-orientation tracks
    by shifting offenders one-by-one; returns the number of moved
    tracks. *)

val track_count : placement -> int
