lib/solver/simplex.mli: Lp
