lib/solver/ilp.ml: Array Float List Lp Operon_util Simplex
