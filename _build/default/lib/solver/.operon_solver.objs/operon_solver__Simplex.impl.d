lib/solver/simplex.ml: Array Float List Lp
