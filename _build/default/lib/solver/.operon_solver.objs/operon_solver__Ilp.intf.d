lib/solver/ilp.mli: Lp Operon_util
