lib/solver/lp.mli:
