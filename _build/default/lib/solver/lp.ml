type relation = Le | Ge | Eq

type constr = { coeffs : (int * float) list; rel : relation; rhs : float }

type t = {
  nvars : int;
  objective : float array;
  mutable rows : constr list; (* reversed insertion order *)
  mutable nrows : int;
}

let create ~nvars =
  if nvars <= 0 then invalid_arg "Lp.create: need at least one variable";
  { nvars; objective = Array.make nvars 0.0; rows = []; nrows = 0 }

let nvars m = m.nvars

let check_var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Lp: variable out of range"

let set_objective m v c =
  check_var m v;
  m.objective.(v) <- c

let objective_coeff m v =
  check_var m v;
  m.objective.(v)

let add_constraint m coeffs rel rhs =
  List.iter (fun (v, _) -> check_var m v) coeffs;
  m.rows <- { coeffs; rel; rhs } :: m.rows;
  m.nrows <- m.nrows + 1

let constraints m = List.rev m.rows

let constraint_count m = m.nrows

let eval_objective m x =
  let acc = ref 0.0 in
  Array.iteri (fun v c -> acc := !acc +. (c *. x.(v))) m.objective;
  !acc

let lhs_value coeffs x =
  List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0.0 coeffs

let constraint_satisfied ?(eps = 1e-6) row x =
  let lhs = lhs_value row.coeffs x in
  match row.rel with
  | Le -> lhs <= row.rhs +. eps
  | Ge -> lhs >= row.rhs -. eps
  | Eq -> Float.abs (lhs -. row.rhs) <= eps

let feasible ?(eps = 1e-6) m x =
  Array.length x = m.nvars
  && Array.for_all (fun v -> v >= -.eps) x
  && List.for_all (fun row -> constraint_satisfied ~eps row x) m.rows
