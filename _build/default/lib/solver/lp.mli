(** Linear-program model builder.

    The OPERON candidate-selection problem (Formula 3 of the paper, after
    the standard linearization of the quadratic crossing terms) is expressed
    with this module and solved by {!Simplex} / {!Ilp}. Variables are
    implicitly non-negative; upper bounds are added as rows by the callers
    that need them. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;  (** sparse (variable, coefficient) terms *)
  rel : relation;
  rhs : float;
}

type t

val create : nvars:int -> t
(** A minimization model over [nvars] non-negative variables with an
    all-zero objective and no constraints. *)

val nvars : t -> int

val set_objective : t -> int -> float -> unit
(** [set_objective m v c] sets the cost coefficient of variable [v]. *)

val objective_coeff : t -> int -> float

val add_constraint : t -> (int * float) list -> relation -> float -> unit
(** Append a row. Raises [Invalid_argument] on out-of-range variables. *)

val constraints : t -> constr list
(** Rows in insertion order. *)

val constraint_count : t -> int

val eval_objective : t -> float array -> float

val constraint_satisfied : ?eps:float -> constr -> float array -> bool

val feasible : ?eps:float -> t -> float array -> bool
(** Point satisfies every row and non-negativity (within [eps]). *)
