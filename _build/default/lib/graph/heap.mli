(** Binary min-heap keyed by floats. Backs Prim's algorithm and Dijkstra.
    Stale-entry ("lazy deletion") usage is supported: push the same payload
    several times and skip outdated pops at the call site. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** Insert a payload with the given key. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key entry. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
