(** Undirected weighted graphs on integer vertices (adjacency lists). *)

type edge = { u : int; v : int; w : float }

type t

val create : int -> t
(** [create n] makes an edgeless graph with vertices 0..n-1. *)

val vertex_count : t -> int

val edge_count : t -> int

val add_edge : t -> int -> int -> float -> unit
(** Add an undirected edge; parallel edges are allowed. Raises
    [Invalid_argument] on out-of-range vertices. *)

val neighbors : t -> int -> (int * float) list
(** [(neighbor, weight)] pairs of a vertex. *)

val edges : t -> edge list
(** Each undirected edge listed once, with [u <= v]. *)

val complete_of_weights : int -> (int -> int -> float) -> t
(** [complete_of_weights n f] builds the complete graph where edge (i,j)
    weighs [f i j]; used for geometric MSTs over pin sets. *)

val total_weight : t -> float
