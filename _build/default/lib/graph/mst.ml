let kruskal g =
  let edges = List.sort (fun a b -> Float.compare a.Wgraph.w b.Wgraph.w) (Wgraph.edges g) in
  let dsu = Dsu.create (Wgraph.vertex_count g) in
  List.filter (fun { Wgraph.u; v; _ } -> Dsu.union dsu u v) edges

let prim g =
  let n = Wgraph.vertex_count g in
  if n = 0 then []
  else begin
    let visited = Array.make n false in
    let heap = Heap.create () in
    let acc = ref [] in
    let visit u =
      visited.(u) <- true;
      List.iter
        (fun (v, w) -> if not visited.(v) then Heap.push heap w (u, v, w))
        (Wgraph.neighbors g u)
    in
    for start = 0 to n - 1 do
      if not visited.(start) then begin
        visit start;
        let continue = ref true in
        while !continue do
          match Heap.pop heap with
          | None -> continue := false
          | Some (_, (u, v, w)) ->
              if not visited.(v) then begin
                acc := { Wgraph.u; v; w } :: !acc;
                visit v
              end
        done
      end
    done;
    !acc
  end

let prim_dense n weight =
  if n <= 1 then []
  else begin
    let in_tree = Array.make n false in
    let best = Array.make n infinity in
    let parent = Array.make n (-1) in
    in_tree.(0) <- true;
    for v = 1 to n - 1 do
      best.(v) <- weight 0 v;
      parent.(v) <- 0
    done;
    let acc = ref [] in
    for _ = 1 to n - 1 do
      (* Pick the cheapest fringe vertex. *)
      let u = ref (-1) in
      for v = 0 to n - 1 do
        if (not in_tree.(v)) && (!u = -1 || best.(v) < best.(!u)) then u := v
      done;
      let u = !u in
      in_tree.(u) <- true;
      acc := (parent.(u), u) :: !acc;
      for v = 0 to n - 1 do
        if not in_tree.(v) then begin
          let w = weight u v in
          if w < best.(v) then begin
            best.(v) <- w;
            parent.(v) <- u
          end
        end
      done
    done;
    !acc
  end

let weight edges = List.fold_left (fun acc e -> acc +. e.Wgraph.w) 0.0 edges
