lib/graph/heap.mli:
