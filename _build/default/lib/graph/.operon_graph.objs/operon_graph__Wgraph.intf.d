lib/graph/wgraph.mli:
