lib/graph/spath.mli: Wgraph
