lib/graph/mst.ml: Array Dsu Float Heap List Wgraph
