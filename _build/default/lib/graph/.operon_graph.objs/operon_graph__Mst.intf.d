lib/graph/mst.mli: Wgraph
