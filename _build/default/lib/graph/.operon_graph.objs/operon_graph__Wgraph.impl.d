lib/graph/wgraph.ml: Array List
