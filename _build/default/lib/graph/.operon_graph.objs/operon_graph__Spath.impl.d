lib/graph/spath.ml: Array Heap List Wgraph
