lib/graph/dsu.mli:
