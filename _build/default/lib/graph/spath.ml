type result = { dist : float array; prev : int array }

let dijkstra g src =
  let n = Wgraph.vertex_count g in
  if src < 0 || src >= n then invalid_arg "Spath.dijkstra: source out of range";
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          List.iter
            (fun (v, w) ->
              if w < 0.0 then invalid_arg "Spath.dijkstra: negative weight";
              let nd = d +. w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                prev.(v) <- u;
                Heap.push heap nd v
              end)
            (Wgraph.neighbors g u);
        loop ()
  in
  loop ();
  { dist; prev }

let bellman_ford g src =
  let n = Wgraph.vertex_count g in
  if src < 0 || src >= n then invalid_arg "Spath.bellman_ford: source out of range";
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  dist.(src) <- 0.0;
  let relax_all () =
    let changed = ref false in
    for u = 0 to n - 1 do
      if dist.(u) < infinity then
        List.iter
          (fun (v, w) ->
            if dist.(u) +. w < dist.(v) then begin
              dist.(v) <- dist.(u) +. w;
              prev.(v) <- u;
              changed := true
            end)
          (Wgraph.neighbors g u)
    done;
    !changed
  in
  let rec iterate k =
    if k = 0 then relax_all () (* one extra pass detects negative cycles *)
    else if relax_all () then iterate (k - 1)
    else false
  in
  if iterate (n - 1) then None else Some { dist; prev }

let path_to r target =
  if target < 0 || target >= Array.length r.dist || r.dist.(target) = infinity
  then []
  else begin
    let rec build v acc =
      if v = -1 then acc else build r.prev.(v) (v :: acc)
    in
    build target []
  end
