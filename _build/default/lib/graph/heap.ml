type 'a t = {
  mutable keys : float array;
  mutable data : 'a option array;
  mutable size : int;
}

let create () = { keys = Array.make 16 0.0; data = Array.make 16 None; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.keys in
  let keys = Array.make (cap * 2) 0.0 in
  let data = Array.make (cap * 2) None in
  Array.blit h.keys 0 keys 0 h.size;
  Array.blit h.data 0 data 0 h.size;
  h.keys <- keys;
  h.data <- data

let swap h i j =
  let k = h.keys.(i) and d = h.data.(i) in
  h.keys.(i) <- h.keys.(j);
  h.data.(i) <- h.data.(j);
  h.keys.(j) <- k;
  h.data.(j) <- d

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(parent) > h.keys.(i) then begin
      swap h parent i;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
  if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h key payload =
  if h.size = Array.length h.keys then grow h;
  h.keys.(h.size) <- key;
  h.data.(h.size) <- Some payload;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) in
    let payload =
      match h.data.(0) with Some p -> p | None -> assert false
    in
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some (key, payload)
  end

let peek h =
  if h.size = 0 then None
  else
    match h.data.(0) with
    | Some p -> Some (h.keys.(0), p)
    | None -> assert false

let clear h =
  Array.fill h.data 0 h.size None;
  h.size <- 0
