type edge = { u : int; v : int; w : float }

type t = { adj : (int * float) list array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Wgraph.create: negative size";
  { adj = Array.make n []; m = 0 }

let vertex_count g = Array.length g.adj

let edge_count g = g.m

let add_edge g u v w =
  let n = Array.length g.adj in
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg "Wgraph.add_edge: vertex out of range";
  g.adj.(u) <- (v, w) :: g.adj.(u);
  if u <> v then g.adj.(v) <- (u, w) :: g.adj.(v);
  g.m <- g.m + 1

let neighbors g u = g.adj.(u)

let edges g =
  let acc = ref [] in
  Array.iteri
    (fun u nbrs ->
      List.iter (fun (v, w) -> if u <= v then acc := { u; v; w } :: !acc) nbrs)
    g.adj;
  !acc

let complete_of_weights n f =
  let g = create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      add_edge g i j (f i j)
    done
  done;
  g

let total_weight g =
  List.fold_left (fun acc { w; _ } -> acc +. w) 0.0 (edges g)
