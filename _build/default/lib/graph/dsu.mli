(** Disjoint-set union (union-find) with path halving and union by rank.
    Backs Kruskal's MST and the connectivity checks in the Steiner
    constructors. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled 0..n-1. *)

val find : t -> int -> int
(** Representative of the element's set (with path compression). *)

val union : t -> int -> int -> bool
(** Merge two sets; returns [false] when already joined. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of remaining disjoint sets. *)

val size : t -> int -> int
(** Cardinality of the set containing the element. *)
