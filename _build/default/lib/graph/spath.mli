(** Single-source shortest paths.

    Dijkstra backs the min-cost max-flow's reduced-cost phase; Bellman-Ford
    bootstraps potentials when some arc costs are negative. *)

type result = {
  dist : float array;  (** [infinity] for unreachable vertices. *)
  prev : int array;  (** Predecessor vertex, or -1 at sources/unreached. *)
}

val dijkstra : Wgraph.t -> int -> result
(** Non-negative edge weights required (checked; raises
    [Invalid_argument] otherwise). *)

val bellman_ford : Wgraph.t -> int -> result option
(** Handles negative weights; [None] when a negative cycle is reachable.
    Note: on an {e undirected} graph any negative edge is itself a negative
    cycle. *)

val path_to : result -> int -> int list
(** Vertex sequence from the source to the target (inclusive); [] when
    unreachable. *)
