(** Minimum spanning trees. Both classic algorithms are provided: Kruskal
    for sparse edge lists, and a dense-Prim specialised for geometric
    instances (complete graphs over pin sets) where it runs in O(n²) without
    materialising the edges. *)

val kruskal : Wgraph.t -> Wgraph.edge list
(** MST edges (a spanning forest if the graph is disconnected). *)

val prim : Wgraph.t -> Wgraph.edge list
(** MST edges via Prim with a binary heap, starting from vertex 0 and
    restarting per component. *)

val prim_dense : int -> (int -> int -> float) -> (int * int) list
(** [prim_dense n weight] computes the MST of the implicit complete graph on
    [n] vertices without building it. Returns parent edges [(u, v)].
    O(n²) time, O(n) space. Returns [] for [n <= 1]. *)

val weight : Wgraph.edge list -> float
(** Total weight of an edge list. *)
