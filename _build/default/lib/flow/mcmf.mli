(** Min-cost max-flow by successive shortest paths with Johnson potentials.

    This replaces the LEMON solver the paper used for WDM re-assignment
    (Section 4.2). Costs are floats (perpendicular displacement distances and
    WDM usage costs); capacities are integers (channel counts). Because the
    assignment network is a bipartite transportation network, the optimal
    basic solution is integral, exactly as the paper's uni-modularity remark
    requires. *)

type t

val create : int -> t
(** [create n] builds an empty network on vertices 0..n-1. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:float -> int
(** Add a directed arc with capacity and per-unit cost; returns an arc
    handle for {!flow_on}. Negative costs are allowed (a Bellman-Ford pass
    bootstraps the potentials). *)

val solve : t -> source:int -> sink:int -> int * float
(** [(flow, cost)] of a minimum-cost maximum flow. Raises [Failure] when a
    negative cycle is present in the initial network. *)

val solve_bounded : t -> source:int -> sink:int -> max_flow:int -> int * float
(** Like {!solve} but stops once [max_flow] units have been routed. *)

val flow_on : t -> int -> int
(** Flow routed on an arc handle (valid after {!solve}). *)
