(** Dinic's maximum-flow algorithm on directed networks with integer
    capacities. Used for feasibility checks of the WDM assignment network
    (can every connection be covered at all?) before costs are considered. *)

type t

val create : int -> t
(** [create n] builds an empty network on vertices 0..n-1. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** Add a directed arc and its residual twin; returns an arc handle usable
    with {!flow_on}. Raises [Invalid_argument] on bad vertices or negative
    capacity. *)

val max_flow : t -> source:int -> sink:int -> int
(** Value of a maximum source-sink flow. Can be called once per network
    state; subsequent calls continue from the current residual network. *)

val flow_on : t -> int -> int
(** Flow currently routed through an arc handle. *)

val vertex_count : t -> int
