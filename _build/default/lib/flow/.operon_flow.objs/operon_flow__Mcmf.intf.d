lib/flow/mcmf.mli:
