lib/flow/mcmf.ml: Array Float
