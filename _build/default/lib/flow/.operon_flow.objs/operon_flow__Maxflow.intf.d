lib/flow/maxflow.mli:
