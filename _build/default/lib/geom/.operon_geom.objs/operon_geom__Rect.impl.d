lib/geom/rect.ml: Array Float Format Point
