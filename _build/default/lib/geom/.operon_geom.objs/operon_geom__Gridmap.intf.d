lib/geom/gridmap.mli: Point Rect Segment
