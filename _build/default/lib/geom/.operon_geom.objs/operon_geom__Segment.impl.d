lib/geom/segment.ml: Array Float Format Point Rect
