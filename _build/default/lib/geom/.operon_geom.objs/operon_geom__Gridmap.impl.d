lib/geom/gridmap.ml: Array Buffer Float Point Rect Segment Stdlib String
