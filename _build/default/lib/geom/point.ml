type t = { x : float; y : float }

let make x y = { x; y }

let origin = { x = 0.0; y = 0.0 }

let equal a b = a.x = b.x && a.y = b.y

let close ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps && Float.abs (a.y -. b.y) <= eps

let compare a b =
  let c = Float.compare a.x b.x in
  if c <> 0 then c else Float.compare a.y b.y

let l1 a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

let l2_sq a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let l2 a b = sqrt (l2_sq a b)

let midpoint a b = { x = (a.x +. b.x) /. 2.0; y = (a.y +. b.y) /. 2.0 }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale k p = { x = k *. p.x; y = k *. p.y }

let dot a b = (a.x *. b.x) +. (a.y *. b.y)

let cross a b = (a.x *. b.y) -. (a.y *. b.x)

let centroid pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Point.centroid: empty array";
  let sx = ref 0.0 and sy = ref 0.0 in
  Array.iter
    (fun p ->
      sx := !sx +. p.x;
      sy := !sy +. p.y)
    pts;
  { x = !sx /. float_of_int n; y = !sy /. float_of_int n }

let pp fmt p = Format.fprintf fmt "(%.4f, %.4f)" p.x p.y
