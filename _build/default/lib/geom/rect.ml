type t = { xmin : float; ymin : float; xmax : float; ymax : float }

let make ~xmin ~ymin ~xmax ~ymax =
  if xmin > xmax || ymin > ymax then invalid_arg "Rect.make: inverted bounds";
  { xmin; ymin; xmax; ymax }

let of_points pts =
  if Array.length pts = 0 then invalid_arg "Rect.of_points: empty array";
  let p0 = pts.(0) in
  let xmin = ref p0.Point.x and xmax = ref p0.Point.x in
  let ymin = ref p0.Point.y and ymax = ref p0.Point.y in
  Array.iter
    (fun { Point.x; y } ->
      if x < !xmin then xmin := x;
      if x > !xmax then xmax := x;
      if y < !ymin then ymin := y;
      if y > !ymax then ymax := y)
    pts;
  { xmin = !xmin; ymin = !ymin; xmax = !xmax; ymax = !ymax }

let width r = r.xmax -. r.xmin

let height r = r.ymax -. r.ymin

let area r = width r *. height r

let half_perimeter r = width r +. height r

let contains r { Point.x; y } =
  x >= r.xmin && x <= r.xmax && y >= r.ymin && y <= r.ymax

let overlaps a b =
  a.xmin <= b.xmax && b.xmin <= a.xmax && a.ymin <= b.ymax && b.ymin <= a.ymax

let inflate r m =
  let xmin = r.xmin -. m and xmax = r.xmax +. m in
  let ymin = r.ymin -. m and ymax = r.ymax +. m in
  if xmin > xmax || ymin > ymax then
    (* Over-shrunk: collapse to the centre point. *)
    let cx = (r.xmin +. r.xmax) /. 2.0 and cy = (r.ymin +. r.ymax) /. 2.0 in
    { xmin = cx; ymin = cy; xmax = cx; ymax = cy }
  else { xmin; ymin; xmax; ymax }

let union a b =
  { xmin = Float.min a.xmin b.xmin;
    ymin = Float.min a.ymin b.ymin;
    xmax = Float.max a.xmax b.xmax;
    ymax = Float.max a.ymax b.ymax }

let intersection a b =
  if not (overlaps a b) then None
  else
    Some
      { xmin = Float.max a.xmin b.xmin;
        ymin = Float.max a.ymin b.ymin;
        xmax = Float.min a.xmax b.xmax;
        ymax = Float.min a.ymax b.ymax }

let center r = Point.make ((r.xmin +. r.xmax) /. 2.0) ((r.ymin +. r.ymax) /. 2.0)

let pp fmt r =
  Format.fprintf fmt "[%.4f,%.4f]x[%.4f,%.4f]" r.xmin r.xmax r.ymin r.ymax
