type t = { a : Point.t; b : Point.t }

let eps_default = 1e-9

let make a b = { a; b }

let length s = Point.l2 s.a s.b

let length_l1 s = Point.l1 s.a s.b

let is_horizontal ?(eps = eps_default) s = Float.abs (s.a.Point.y -. s.b.Point.y) <= eps

let is_vertical ?(eps = eps_default) s = Float.abs (s.a.Point.x -. s.b.Point.x) <= eps

let bbox s = Rect.of_points [| s.a; s.b |]

let orientation p q r =
  let v = Point.cross (Point.sub q p) (Point.sub r p) in
  if v > eps_default then 1 else if v < -.eps_default then -1 else 0

let on_segment pt s =
  let open Point in
  Float.min s.a.x s.b.x -. eps_default <= pt.x
  && pt.x <= Float.max s.a.x s.b.x +. eps_default
  && Float.min s.a.y s.b.y -. eps_default <= pt.y
  && pt.y <= Float.max s.a.y s.b.y +. eps_default

let intersects s1 s2 =
  let o1 = orientation s1.a s1.b s2.a in
  let o2 = orientation s1.a s1.b s2.b in
  let o3 = orientation s2.a s2.b s1.a in
  let o4 = orientation s2.a s2.b s1.b in
  if o1 <> o2 && o3 <> o4 then true
  else
    (o1 = 0 && on_segment s2.a s1)
    || (o2 = 0 && on_segment s2.b s1)
    || (o3 = 0 && on_segment s1.a s2)
    || (o4 = 0 && on_segment s1.b s2)

let crosses_properly s1 s2 =
  let o1 = orientation s1.a s1.b s2.a in
  let o2 = orientation s1.a s1.b s2.b in
  let o3 = orientation s2.a s2.b s1.a in
  let o4 = orientation s2.a s2.b s1.b in
  (* Strict sign changes on both segments mean the crossing point is interior
     to both; any zero orientation is an endpoint touch or collinearity. *)
  o1 * o2 < 0 && o3 * o4 < 0

let intersection_point s1 s2 =
  let open Point in
  let r = sub s1.b s1.a and s = sub s2.b s2.a in
  let denom = cross r s in
  if Float.abs denom <= eps_default then None
  else
    let qp = sub s2.a s1.a in
    let t = cross qp s /. denom in
    let u = cross qp r /. denom in
    if t >= -.eps_default && t <= 1.0 +. eps_default && u >= -.eps_default
       && u <= 1.0 +. eps_default
    then Some (add s1.a (scale t r))
    else None

let count_crossings fam1 fam2 =
  let count = ref 0 in
  Array.iter
    (fun s1 ->
      Array.iter (fun s2 -> if crosses_properly s1 s2 then incr count) fam2)
    fam1;
  !count

let count_self_crossings fam =
  let n = Array.length fam in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if crosses_properly fam.(i) fam.(j) then incr count
    done
  done;
  !count

let distance_point p s =
  let open Point in
  let ab = sub s.b s.a in
  let len_sq = dot ab ab in
  if len_sq <= eps_default then l2 p s.a
  else
    let t = dot (sub p s.a) ab /. len_sq in
    let t = Float.max 0.0 (Float.min 1.0 t) in
    l2 p (add s.a (scale t ab))

let pp fmt s = Format.fprintf fmt "%a--%a" Point.pp s.a Point.pp s.b
