(** Planar points in chip coordinates (centimetres, matching the paper's
    up-scaled industrial benchmarks). *)

type t = { x : float; y : float }

val make : float -> float -> t

val origin : t

val equal : t -> t -> bool
(** Exact coordinate equality. *)

val close : ?eps:float -> t -> t -> bool
(** Equality up to [eps] (default 1e-9) in each coordinate. *)

val compare : t -> t -> int
(** Lexicographic (x, then y) order, suitable for sorting sweeps. *)

val l1 : t -> t -> float
(** Manhattan distance — the metric of electrical (rectilinear) wires. *)

val l2 : t -> t -> float
(** Euclidean distance — optical waveguides may route at any angle. *)

val l2_sq : t -> t -> float
(** Squared Euclidean distance (avoids the sqrt in nearest-neighbour loops). *)

val midpoint : t -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val dot : t -> t -> float

val cross : t -> t -> float
(** 2-D cross product (z-component), used for orientation tests. *)

val centroid : t array -> t
(** Gravity centre of a non-empty point set; raises [Invalid_argument] on
    empty input. *)

val pp : Format.formatter -> t -> unit
