(** Axis-aligned rectangles. Used for net bounding boxes — the Section 3.3
    speed-up drops crossing variables for hyper net pairs whose bounding
    boxes do not overlap. *)

type t = { xmin : float; ymin : float; xmax : float; ymax : float }

val make : xmin:float -> ymin:float -> xmax:float -> ymax:float -> t
(** Raises [Invalid_argument] if min exceeds max on either axis. *)

val of_points : Point.t array -> t
(** Tight bounding box of a non-empty point set. *)

val width : t -> float

val height : t -> float

val area : t -> float

val half_perimeter : t -> float
(** HPWL of the box — the classic wirelength lower bound. *)

val contains : t -> Point.t -> bool
(** Closed containment (boundary counts as inside). *)

val overlaps : t -> t -> bool
(** Closed overlap test: touching boxes are considered overlapping, which is
    the conservative choice for keeping crossing variables. *)

val inflate : t -> float -> t
(** Grow by a margin on all four sides (negative margins shrink; the result
    is clamped so it stays well-formed). *)

val union : t -> t -> t

val intersection : t -> t -> t option
(** [None] when the boxes are disjoint. *)

val center : t -> Point.t

val pp : Format.formatter -> t -> unit
