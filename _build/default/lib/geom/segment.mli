(** Line segments and crossing tests.

    Optical waveguide crossings cost [β] dB each (Eq. 2 of the paper), so
    counting proper intersections between the segments of different nets is
    a core primitive of the loss model. *)

type t = { a : Point.t; b : Point.t }

val make : Point.t -> Point.t -> t

val length : t -> float
(** Euclidean length. *)

val length_l1 : t -> float
(** Manhattan length. *)

val is_horizontal : ?eps:float -> t -> bool

val is_vertical : ?eps:float -> t -> bool

val bbox : t -> Rect.t

val orientation : Point.t -> Point.t -> Point.t -> int
(** Sign of the cross product of [pq] x [pr]: +1 counter-clockwise, -1
    clockwise, 0 collinear (with a tolerance). *)

val on_segment : Point.t -> t -> bool
(** Does the (collinear) point lie within the segment's extent? *)

val intersects : t -> t -> bool
(** Closed intersection test, including collinear overlap and endpoint
    touching. *)

val crosses_properly : t -> t -> bool
(** True only for transversal crossings in segment interiors — the events
    that incur waveguide crossing loss. Shared endpoints (tree branching
    points) and collinear overlaps do not count. *)

val intersection_point : t -> t -> Point.t option
(** Intersection point of two non-parallel segments if they meet. *)

val count_crossings : t array -> t array -> int
(** Number of proper crossings between two segment families. *)

val count_self_crossings : t array -> int
(** Proper crossings among distinct pairs within one family. *)

val distance_point : Point.t -> t -> float
(** Euclidean distance from a point to the segment. *)

val pp : Format.formatter -> t -> unit
