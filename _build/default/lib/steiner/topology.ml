open Operon_geom

type metric = L1 | L2

let dist = function L1 -> Point.l1 | L2 -> Point.l2

type t = {
  positions : Point.t array;
  nterminals : int;
  root : int;
  parent : int array;
  children : int list array;
  postorder : int list;
}

let make ~positions ~nterminals ~edges ~root =
  let n = Array.length positions in
  if nterminals < 1 || nterminals > n then
    invalid_arg "Topology.make: bad terminal count";
  if root < 0 || root >= nterminals then
    invalid_arg "Topology.make: root must be a terminal";
  if List.length edges <> n - 1 then
    invalid_arg "Topology.make: edge count must be n-1";
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n || u = v then
        invalid_arg "Topology.make: bad edge";
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let parent = Array.make n (-2) in
  let children = Array.make n [] in
  let order = ref [] in
  (* Iterative DFS from the root; records reverse postorder. *)
  let stack = ref [ (root, -1) ] in
  let seen = ref 0 in
  let finish_stack = ref [] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, p) :: rest ->
        stack := rest;
        if parent.(v) = -2 then begin
          parent.(v) <- p;
          incr seen;
          finish_stack := v :: !finish_stack;
          if p >= 0 then children.(p) <- v :: children.(p);
          List.iter
            (fun w -> if parent.(w) = -2 then stack := (w, v) :: !stack)
            adj.(v)
        end
  done;
  if !seen <> n then invalid_arg "Topology.make: edges do not span all nodes";
  (* !finish_stack is in reverse preorder; postorder = children before
     parents. A correct postorder comes from sorting by decreasing depth,
     but reversing the preorder already guarantees child-before-parent. *)
  order := !finish_stack;
  { positions; nterminals; root; parent; children; postorder = !order }

let node_count t = Array.length t.positions

let terminal_count t = t.nterminals

let root t = t.root

let is_terminal t v = v >= 0 && v < t.nterminals

let position t v = t.positions.(v)

let positions t = t.positions

let parent t v = t.parent.(v)

let children t v = t.children.(v)

let edges t =
  let acc = ref [] in
  Array.iteri (fun v p -> if p >= 0 then acc := (p, v) :: !acc) t.parent;
  !acc

let postorder t = t.postorder

let edge_length metric t v =
  let p = t.parent.(v) in
  if p < 0 then invalid_arg "Topology.edge_length: root has no parent edge";
  dist metric t.positions.(v) t.positions.(p)

let length metric t =
  let acc = ref 0.0 in
  Array.iteri
    (fun v p -> if p >= 0 then acc := !acc +. dist metric t.positions.(v) t.positions.(p))
    t.parent;
  !acc

let segments t =
  let acc = ref [] in
  Array.iteri
    (fun v p ->
      if p >= 0 then acc := Segment.make t.positions.(p) t.positions.(v) :: !acc)
    t.parent;
  Array.of_list !acc

let segment_of_edge t v =
  let p = t.parent.(v) in
  if p < 0 then invalid_arg "Topology.segment_of_edge: root has no parent edge";
  Segment.make t.positions.(p) t.positions.(v)

let subtree_terminals t =
  let n = node_count t in
  let counts = Array.make n 0 in
  List.iter
    (fun v ->
      let own = if is_terminal t v then 1 else 0 in
      let from_children =
        List.fold_left (fun acc c -> acc + counts.(c)) 0 t.children.(v)
      in
      counts.(v) <- own + from_children)
    t.postorder;
  counts

let degree t v =
  List.length t.children.(v) + if t.parent.(v) >= 0 then 1 else 0

let bends t =
  (* Count direction changes between each incoming edge and each outgoing
     edge at every internal node (angle deviation above ~1 degree). *)
  let count = ref 0 in
  Array.iteri
    (fun v p ->
      if p >= 0 then
        List.iter
          (fun c ->
            let incoming = Point.sub t.positions.(v) t.positions.(p) in
            let outgoing = Point.sub t.positions.(c) t.positions.(v) in
            let cross = Point.cross incoming outgoing in
            let dot = Point.dot incoming outgoing in
            (* collinear-forward means no bend *)
            if not (Float.abs cross <= 1e-9 && dot >= 0.0) then incr count)
          t.children.(v))
    t.parent;
  !count

let pp fmt t =
  Format.fprintf fmt "@[<v>tree(%d nodes, %d terminals, root=%d)@," (node_count t)
    t.nterminals t.root;
  List.iter
    (fun (p, v) ->
      Format.fprintf fmt "  %d%s -> %d%s@," p
        (if is_terminal t p then "t" else "s")
        v
        (if is_terminal t v then "t" else "s"))
    (edges t);
  Format.fprintf fmt "@]"
