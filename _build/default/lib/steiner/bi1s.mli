(** Batched Iterated 1-Steiner (BI1S) tree construction.

    The paper generates optical baseline topologies with BI1S, exploiting
    that optical waveguides can route at any angle (Euclidean metric) while
    electrical wires are rectilinear (L1 on the Hanan grid). Candidate
    Steiner points are drawn from the Hanan grid of the current point set;
    each round batch-evaluates every candidate's MST saving and greedily
    accepts re-verified winners until no candidate saves length. *)

open Operon_geom

val hanan_points : Point.t array -> Point.t array
(** Hanan-grid points (x from one input point, y from another), excluding
    the inputs themselves. *)

val mst_tree : Topology.metric -> Point.t array -> root:int -> Topology.t
(** Spanning tree over the terminals only (no Steiner points). The
    degenerate single-terminal case yields a one-node tree. *)

val build :
  ?max_rounds:int ->
  ?max_candidates:int ->
  Topology.metric ->
  Point.t array ->
  root:int ->
  Topology.t
(** BI1S tree over the terminals. [max_rounds] bounds batch rounds (default
    3); [max_candidates] caps the candidate pool per round (default 256,
    nearest-to-centroid candidates kept). Degree-1 and degree-2 Steiner
    points are spliced out of the result. *)

val subdivide : Topology.t -> max_len:float -> Topology.t
(** Insert degree-2 Steiner points so no edge exceeds [max_len]
    (Euclidean). Wirelength is unchanged; the extra nodes give the
    co-design DP intermediate EO/OE conversion sites — without them a
    two-pin net could only be entirely optical or entirely electrical. *)

val baselines : Point.t array -> root:int -> Topology.t list
(** A small diverse set of baseline topologies for the co-design DP: the
    Euclidean BI1S tree, the Euclidean MST, the rectilinear BI1S tree, and
    (for small nets) the root-star. Duplicate shapes are removed. *)
