open Operon_geom
open Operon_graph

let hanan_points pts =
  let module PSet = Set.Make (struct
    type t = Point.t

    let compare = Point.compare
  end) in
  let inputs = Array.fold_left (fun s p -> PSet.add p s) PSet.empty pts in
  let acc = ref PSet.empty in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          let cand = Point.make a.Point.x b.Point.y in
          if not (PSet.mem cand inputs) then acc := PSet.add cand !acc)
        pts)
    pts;
  Array.of_list (PSet.elements !acc)

let mst_length metric pts =
  let d = Topology.dist metric in
  let edges = Mst.prim_dense (Array.length pts) (fun i j -> d pts.(i) pts.(j)) in
  List.fold_left (fun acc (u, v) -> acc +. d pts.(u) pts.(v)) 0.0 edges

let mst_tree metric pts ~root =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Bi1s.mst_tree: no terminals";
  if n = 1 then
    Topology.make ~positions:pts ~nterminals:1 ~edges:[] ~root:0
  else begin
    let d = Topology.dist metric in
    let edges = Mst.prim_dense n (fun i j -> d pts.(i) pts.(j)) in
    Topology.make ~positions:pts ~nterminals:n ~edges ~root
  end

(* Remove Steiner points of degree <= 2 from an MST edge set: degree-1
   points are dropped with their edge, degree-2 points are spliced (the
   triangle inequality guarantees no length increase in L1 or L2). Returns
   the surviving point set (terminals keep their indices) and edges. *)
let prune_steiner ~nterminals points edges =
  let n = Array.length points in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let alive = Array.make n true in
  let changed = ref true in
  while !changed do
    changed := false;
    for v = nterminals to n - 1 do
      if alive.(v) then begin
        match adj.(v) with
        | [] -> alive.(v) <- false
        | [ u ] ->
            alive.(v) <- false;
            adj.(u) <- List.filter (fun w -> w <> v) adj.(u);
            adj.(v) <- [];
            changed := true
        | [ u; w ] ->
            alive.(v) <- false;
            adj.(u) <- w :: List.filter (fun x -> x <> v) adj.(u);
            adj.(w) <- u :: List.filter (fun x -> x <> v) adj.(w);
            adj.(v) <- [];
            changed := true
        | _ -> ()
      end
    done
  done;
  (* Compact indices: terminals first (all alive), then surviving Steiner. *)
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if alive.(v) then begin
      remap.(v) <- !next;
      incr next
    end
  done;
  let positions = Array.make !next Point.origin in
  for v = 0 to n - 1 do
    if alive.(v) then positions.(remap.(v)) <- points.(v)
  done;
  let out_edges = ref [] in
  Array.iteri
    (fun u nbrs ->
      List.iter (fun v -> if u < v then out_edges := (remap.(u), remap.(v)) :: !out_edges) nbrs)
    adj;
  (positions, !out_edges)

let build ?(max_rounds = 3) ?(max_candidates = 256) metric terminals ~root =
  let nterminals = Array.length terminals in
  if nterminals = 0 then invalid_arg "Bi1s.build: no terminals";
  if nterminals <= 2 then mst_tree metric terminals ~root
  else begin
    let steiner = ref [] in
    let current () = Array.append terminals (Array.of_list !steiner) in
    let improved = ref true in
    let rounds = ref 0 in
    while !improved && !rounds < max_rounds do
      improved := false;
      incr rounds;
      let pts = current () in
      let base_len = mst_length metric pts in
      let candidates = hanan_points pts in
      (* Cap the pool: keep candidates nearest the centroid, where Steiner
         points are most likely to help. *)
      let candidates =
        if Array.length candidates <= max_candidates then candidates
        else begin
          let c = Point.centroid pts in
          let keyed = Array.map (fun p -> (Point.l2_sq c p, p)) candidates in
          Array.sort (fun (a, _) (b, _) -> Float.compare a b) keyed;
          Array.map snd (Array.sub keyed 0 max_candidates)
        end
      in
      (* Batch: score every candidate against the round-start tree... *)
      let scored =
        Array.map
          (fun cand ->
            let gain = base_len -. mst_length metric (Array.append pts [| cand |]) in
            (gain, cand))
          candidates
      in
      Array.sort (fun (a, _) (b, _) -> Float.compare b a) scored;
      (* ...then accept greedily, re-verifying each gain against the point
         set as already extended this round. *)
      let eps = 1e-9 in
      Array.iter
        (fun (batch_gain, cand) ->
          if batch_gain > eps then begin
            let pts_now = current () in
            let len_now = mst_length metric pts_now in
            let len_with = mst_length metric (Array.append pts_now [| cand |]) in
            if len_now -. len_with > eps then begin
              steiner := cand :: !steiner;
              improved := true
            end
          end)
        scored
    done;
    let pts = current () in
    let d = Topology.dist metric in
    let mst_edges =
      Mst.prim_dense (Array.length pts) (fun i j -> d pts.(i) pts.(j))
    in
    let positions, edges = prune_steiner ~nterminals pts mst_edges in
    Topology.make ~positions ~nterminals ~edges ~root
  end

let subdivide topo ~max_len =
  if max_len <= 0.0 then invalid_arg "Bi1s.subdivide: non-positive max_len";
  let n = Topology.node_count topo in
  let positions = ref (Array.to_list (Topology.positions topo)) in
  let next = ref n in
  let edges = ref [] in
  List.iter
    (fun (p, v) ->
      let a = Topology.position topo p and b = Topology.position topo v in
      let len = Point.l2 a b in
      let pieces = int_of_float (Float.ceil (len /. max_len)) in
      if pieces <= 1 then edges := (p, v) :: !edges
      else begin
        let prev = ref p in
        for k = 1 to pieces - 1 do
          let t = float_of_int k /. float_of_int pieces in
          let m = Point.add a (Point.scale t (Point.sub b a)) in
          positions := !positions @ [ m ];
          edges := (!prev, !next) :: !edges;
          prev := !next;
          incr next
        done;
        edges := (!prev, v) :: !edges
      end)
    (Topology.edges topo);
  Topology.make
    ~positions:(Array.of_list !positions)
    ~nterminals:(Topology.terminal_count topo)
    ~edges:!edges ~root:(Topology.root topo)

let star terminals ~root =
  let n = Array.length terminals in
  let edges = ref [] in
  for v = 0 to n - 1 do
    if v <> root then edges := (root, v) :: !edges
  done;
  Topology.make ~positions:terminals ~nterminals:n ~edges:!edges ~root

let shape_key t =
  (* Cheap structural fingerprint for deduplication. *)
  let len = Topology.length Topology.L2 t in
  (Topology.node_count t, Float.round (len *. 1e6))

let baselines terminals ~root =
  let n = Array.length terminals in
  if n = 0 then invalid_arg "Bi1s.baselines: no terminals";
  if n = 1 then [ mst_tree Topology.L2 terminals ~root ]
  else begin
    let primary = build Topology.L2 terminals ~root in
    let cands =
      [ primary;
        subdivide primary ~max_len:1.5;
        mst_tree Topology.L2 terminals ~root;
        build Topology.L1 terminals ~root ]
      @ (if n <= 6 then [ star terminals ~root ] else [])
    in
    let seen = Hashtbl.create 8 in
    List.filter
      (fun t ->
        let key = shape_key t in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      cands
  end
