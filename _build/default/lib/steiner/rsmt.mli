(** Rectilinear Steiner Minimum Tree estimation.

    The paper estimates electrical wirelength (and hence the Eq. 6 dynamic
    power of the Streak-like electrical baseline) with RSMT. We use BI1S in
    the L1 metric over the Hanan grid, which is the classic near-optimal
    heuristic, bracketed by the HPWL lower bound and the rectilinear MST
    upper bound. *)

open Operon_geom

val hpwl : Point.t array -> float
(** Half-perimeter wirelength — a lower bound on the RSMT length (and exact
    for nets of up to three pins). Raises on empty input. *)

val rmst_length : Point.t array -> float
(** Rectilinear minimum spanning tree length (upper bound; within 1.5x of
    the RSMT). *)

val wirelength : Point.t array -> float
(** BI1S rectilinear Steiner tree length: [hpwl <= wirelength <=
    rmst_length] holds up to floating-point noise. *)

val tree : Point.t array -> root:int -> Topology.t
(** The underlying rectilinear Steiner topology. *)
