lib/steiner/bi1s.ml: Array Float Hashtbl List Mst Operon_geom Operon_graph Point Set Topology
