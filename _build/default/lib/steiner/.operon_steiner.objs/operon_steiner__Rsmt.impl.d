lib/steiner/rsmt.ml: Array Bi1s List Operon_geom Operon_graph Point Rect Topology
