lib/steiner/bi1s.mli: Operon_geom Point Topology
