lib/steiner/topology.ml: Array Float Format List Operon_geom Point Segment
