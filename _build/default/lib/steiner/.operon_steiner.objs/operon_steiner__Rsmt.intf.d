lib/steiner/rsmt.mli: Operon_geom Point Topology
