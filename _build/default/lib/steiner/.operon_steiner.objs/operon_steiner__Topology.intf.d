lib/steiner/topology.mli: Format Operon_geom Point Segment
