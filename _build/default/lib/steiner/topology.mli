(** Rooted routing-tree topologies over terminals and Steiner points.

    The co-design dynamic program (paper Section 3.2) walks these trees
    bottom-up, so the structure is rooted at the driving terminal and every
    node knows its parent and children. Terminals occupy node indices
    [0 .. nterminals-1]; Steiner points follow. *)

open Operon_geom

type metric = L1 | L2
(** Electrical wires are rectilinear (L1); optical waveguides may route at
    any angle (L2). *)

val dist : metric -> Point.t -> Point.t -> float

type t

val make :
  positions:Point.t array -> nterminals:int -> edges:(int * int) list -> root:int -> t
(** Build a rooted tree. Requirements (checked): [1 <= nterminals <=
    Array.length positions]; the edges form a spanning tree over all nodes;
    [root] is a terminal. Raises [Invalid_argument] otherwise. *)

val node_count : t -> int

val terminal_count : t -> int

val root : t -> int

val is_terminal : t -> int -> bool

val position : t -> int -> Point.t

val positions : t -> Point.t array

val parent : t -> int -> int
(** Parent node, -1 for the root. *)

val children : t -> int -> int list

val edges : t -> (int * int) list
(** Directed (parent, child) pairs. *)

val postorder : t -> int list
(** Every child precedes its parent; the root is last. *)

val length : metric -> t -> float
(** Total edge length under a metric. *)

val edge_length : metric -> t -> int -> float
(** Length of the edge from a (non-root) node to its parent. *)

val segments : t -> Segment.t array
(** One geometric segment per tree edge. *)

val segment_of_edge : t -> int -> Segment.t
(** Segment between a non-root node and its parent. *)

val subtree_terminals : t -> int array
(** [.(v)] = number of terminals in the subtree rooted at [v] (the root's
    entry counts all of them). *)

val degree : t -> int -> int

val bends : t -> int
(** Number of direction changes at degree-2 pass-throughs plus branch
    turns, a proxy for the "bending cost" the paper uses to rank Steiner
    candidates. *)

val pp : Format.formatter -> t -> unit
