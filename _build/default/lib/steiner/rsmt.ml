open Operon_geom

let hpwl pts = Rect.half_perimeter (Rect.of_points pts)

let rmst_length pts =
  if Array.length pts <= 1 then 0.0
  else begin
    let edges =
      Operon_graph.Mst.prim_dense (Array.length pts) (fun i j ->
          Point.l1 pts.(i) pts.(j))
    in
    List.fold_left (fun acc (u, v) -> acc +. Point.l1 pts.(u) pts.(v)) 0.0 edges
  end

let tree pts ~root = Bi1s.build Topology.L1 pts ~root

let wirelength pts =
  if Array.length pts <= 1 then 0.0
  else Topology.length Topology.L1 (tree pts ~root:0)
