open Operon_util
open Operon_geom

type result = {
  clusters : int array array;
  centroids : Point.t array;
  iterations : int;
}

(* K-Means++ seeding: each next centre is drawn with probability
   proportional to the squared distance from the nearest chosen centre. *)
let seed_centroids rng points k =
  let n = Array.length points in
  let centroids = Array.make k points.(Prng.int rng n) in
  let d2 = Array.make n infinity in
  for c = 1 to k - 1 do
    let prev = centroids.(c - 1) in
    for i = 0 to n - 1 do
      d2.(i) <- Float.min d2.(i) (Point.l2_sq points.(i) prev)
    done;
    let total = Array.fold_left ( +. ) 0.0 d2 in
    if total <= 0.0 then centroids.(c) <- points.(Prng.int rng n)
    else begin
      let target = Prng.float rng total in
      let acc = ref 0.0 and chosen = ref (n - 1) in
      (try
         for i = 0 to n - 1 do
           acc := !acc +. d2.(i);
           if !acc >= target then begin
             chosen := i;
             raise Exit
           end
         done
       with Exit -> ());
      centroids.(c) <- points.(!chosen)
    end
  done;
  centroids

(* Capacity-aware assignment: points are processed by increasing distance
   to their closest centroid; each takes the nearest centroid that still
   has room, spilling to the second closest and so on. *)
let assign points centroids capacity =
  let n = Array.length points and k = Array.length centroids in
  let order =
    let keyed =
      Array.init n (fun i ->
          let best = ref infinity in
          Array.iter
            (fun c -> best := Float.min !best (Point.l2_sq points.(i) c))
            centroids;
          (!best, i))
    in
    Array.sort (fun (a, _) (b, _) -> Float.compare a b) keyed;
    Array.map snd keyed
  in
  let load = Array.make k 0 in
  let assignment = Array.make n (-1) in
  Array.iter
    (fun i ->
      let prefs = Array.init k (fun c -> (Point.l2_sq points.(i) centroids.(c), c)) in
      Array.sort (fun (a, _) (b, _) -> Float.compare a b) prefs;
      let rec place r =
        if r >= k then
          (* All clusters full: only possible when k*capacity < n, which the
             caller rules out. *)
          invalid_arg "Kmeans.assign: no capacity left"
        else begin
          let _, c = prefs.(r) in
          if load.(c) < capacity then begin
            assignment.(i) <- c;
            load.(c) <- load.(c) + 1
          end
          else place (r + 1)
        end
      in
      place 0)
    order;
  assignment

let variance points assignment centroids =
  let acc = ref 0.0 in
  Array.iteri
    (fun i c -> acc := !acc +. Point.l2_sq points.(i) centroids.(c))
    assignment;
  !acc /. float_of_int (Stdlib.max 1 (Array.length points))

let recompute_centroids points assignment k old =
  let sums = Array.make k (0.0, 0.0, 0) in
  Array.iteri
    (fun i c ->
      let sx, sy, cnt = sums.(c) in
      sums.(c) <- (sx +. points.(i).Point.x, sy +. points.(i).Point.y, cnt + 1))
    assignment;
  Array.mapi
    (fun c (sx, sy, cnt) ->
      if cnt = 0 then old.(c)
      else Point.make (sx /. float_of_int cnt) (sy /. float_of_int cnt))
    sums

let run ?(max_iter = 50) ?(threshold = 1e-3) rng points ~k ~capacity =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.run: no points";
  if k <= 0 then invalid_arg "Kmeans.run: k must be positive";
  if capacity <= 0 then invalid_arg "Kmeans.run: capacity must be positive";
  if k * capacity < n then invalid_arg "Kmeans.run: k * capacity < n";
  let centroids = ref (seed_centroids rng points k) in
  let assignment = ref (assign points !centroids capacity) in
  let prev_var = ref (variance points !assignment !centroids) in
  let iterations = ref 1 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    centroids := recompute_centroids points !assignment k !centroids;
    assignment := assign points !centroids capacity;
    let var = variance points !assignment !centroids in
    (* Stop when the variance improvement becomes negligible. *)
    if !prev_var -. var <= threshold *. Float.max !prev_var 1e-12 then
      converged := true;
    prev_var := var
  done;
  (* Gather clusters, dropping empty ones (the paper removes them too). *)
  let buckets = Array.make k [] in
  Array.iteri (fun i c -> buckets.(c) <- i :: buckets.(c)) !assignment;
  let survivors =
    Array.to_list buckets
    |> List.mapi (fun c members -> (c, members))
    |> List.filter (fun (_, members) -> members <> [])
  in
  let clusters =
    survivors |> List.map (fun (_, members) -> Array.of_list (List.rev members))
  in
  let centroids_out =
    survivors
    |> List.map (fun (c, _) -> !centroids.(c))
  in
  { clusters = Array.of_list clusters;
    centroids = Array.of_list centroids_out;
    iterations = !iterations }

let partition rng points ~capacity =
  let n = Array.length points in
  if n <= capacity then
    { clusters = [| Array.init n Fun.id |];
      centroids = [| Point.centroid points |];
      iterations = 0 }
  else begin
    let k = (n + capacity - 1) / capacity in
    run rng points ~k ~capacity
  end
