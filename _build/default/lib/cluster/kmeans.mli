(** Capacity-constrained K-Means (paper Section 3.1.1).

    Signal groups whose bit count exceeds the WDM channel capacity are
    partitioned top-down into K = ceil(bits / capacity) clusters. Plain
    Lloyd iterations cannot bound cluster sizes, so the assignment step is
    extended exactly as the paper describes: a point that would overflow its
    closest centroid spills to the second closest, and so on. Empty
    clusters are removed from the result. *)

open Operon_util
open Operon_geom

type result = {
  clusters : int array array;
      (** Point indices per surviving (non-empty) cluster. *)
  centroids : Point.t array;  (** Gravity centre per surviving cluster. *)
  iterations : int;  (** Lloyd iterations executed. *)
}

val run :
  ?max_iter:int ->
  ?threshold:float ->
  Prng.t ->
  Point.t array ->
  k:int ->
  capacity:int ->
  result
(** [run rng points ~k ~capacity] clusters with at most [capacity] points
    per cluster. Requires [k * capacity >= Array.length points] (checked).
    Iteration stops when the relative decrease of within-cluster variance
    falls below [threshold] (default 1e-3) or after [max_iter] (default 50)
    rounds. K-Means++ seeding. *)

val partition : Prng.t -> Point.t array -> capacity:int -> result
(** Convenience wrapper choosing K = ceil(n / capacity), the paper's choice;
    returns a single cluster untouched when the points already fit. *)
