(** Bottom-up hyper-pin construction (paper Section 3.1.2).

    Within one hyper net, every electrical pin starts as its own hyper pin;
    the closest pair of hyper pins (Euclidean distance between gravity
    centres) merges while that distance stays below the threshold. The
    result maps each surviving hyper pin to its member pins and gravity
    centre. *)

open Operon_geom

type hyper_pin = {
  members : int array;  (** indices into the input pin array *)
  center : Point.t;  (** gravity centre of the members *)
}

val merge : Point.t array -> threshold:float -> hyper_pin array
(** Cluster pins under the merge-distance threshold. A non-positive
    threshold returns one singleton hyper pin per pin. Results are ordered
    by smallest member index. *)
