open Operon_geom

type hyper_pin = { members : int array; center : Point.t }

type cluster = { mutable pts : int list; mutable ctr : Point.t; mutable size : int }

let merge pins ~threshold =
  let n = Array.length pins in
  if n = 0 then [||]
  else if threshold <= 0.0 then
    Array.mapi (fun i p -> { members = [| i |]; center = p }) pins
  else begin
    let clusters =
      Array.init n (fun i -> Some { pts = [ i ]; ctr = pins.(i); size = 1 })
    in
    let merged_ref = ref true in
    while !merged_ref do
      merged_ref := false;
      (* Find the globally closest pair of live clusters. *)
      let best = ref infinity and bi = ref (-1) and bj = ref (-1) in
      for i = 0 to n - 1 do
        match clusters.(i) with
        | None -> ()
        | Some ci ->
            for j = i + 1 to n - 1 do
              match clusters.(j) with
              | None -> ()
              | Some cj ->
                  let d = Point.l2 ci.ctr cj.ctr in
                  if d < !best then begin
                    best := d;
                    bi := i;
                    bj := j
                  end
            done
      done;
      if !bi >= 0 && !best < threshold then begin
        match (clusters.(!bi), clusters.(!bj)) with
        | Some ci, Some cj ->
            (* Weighted gravity centre keeps the running mean exact. *)
            let total = ci.size + cj.size in
            let w1 = float_of_int ci.size /. float_of_int total in
            let w2 = float_of_int cj.size /. float_of_int total in
            ci.ctr <-
              Point.add (Point.scale w1 ci.ctr) (Point.scale w2 cj.ctr);
            ci.pts <- cj.pts @ ci.pts;
            ci.size <- total;
            clusters.(!bj) <- None;
            merged_ref := true
        | _ -> assert false
      end
    done;
    let out = ref [] in
    for i = n - 1 downto 0 do
      match clusters.(i) with
      | None -> ()
      | Some c ->
          let members = Array.of_list (List.sort compare c.pts) in
          out := { members; center = c.ctr } :: !out
    done;
    (* Order hyper pins by their smallest member pin. *)
    List.sort (fun a b -> compare a.members.(0) b.members.(0)) !out
    |> Array.of_list
  end
