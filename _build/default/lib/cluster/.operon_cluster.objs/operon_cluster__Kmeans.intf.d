lib/cluster/kmeans.mli: Operon_geom Operon_util Point Prng
