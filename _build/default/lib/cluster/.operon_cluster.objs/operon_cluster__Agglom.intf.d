lib/cluster/agglom.mli: Operon_geom Point
