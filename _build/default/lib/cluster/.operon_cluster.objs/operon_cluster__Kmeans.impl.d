lib/cluster/kmeans.ml: Array Float Fun List Operon_geom Operon_util Point Prng Stdlib
