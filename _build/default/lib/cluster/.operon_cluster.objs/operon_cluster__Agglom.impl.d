lib/cluster/agglom.ml: Array List Operon_geom Point
