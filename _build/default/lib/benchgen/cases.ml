open Operon_geom

let die_large = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:6.0 ~ymax:6.0
let die_small = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:3.0 ~ymax:3.0

let i1 =
  { Gen.name = "I1";
    seed = 101;
    die = die_large;
    n_blocks = 36;
    partners_near = 4;
    far_partner_prob = 1.0;
    block_size = 0.3;
    n_groups = 356;
    bits_min = 3;
    bits_max = 12;
    sink_blocks_min = 1;
    sink_blocks_max = 4;
    pitch = 0.002;
    local_fraction = 0.65 }

let i2 =
  { Gen.name = "I2";
    seed = 102;
    die = die_large;
    n_blocks = 36;
    partners_near = 4;
    far_partner_prob = 1.0;
    block_size = 0.3;
    n_groups = 837;
    bits_min = 1;
    bits_max = 3;
    sink_blocks_min = 1;
    sink_blocks_max = 1;
    pitch = 0.002;
    local_fraction = 0.10 }

let die_i3 = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2.2 ~ymax:2.2

let i3 =
  { Gen.name = "I3";
    seed = 103;
    die = die_i3;
    n_blocks = 49;
    partners_near = 4;
    far_partner_prob = 0.1;
    block_size = 0.15;
    n_groups = 84;
    bits_min = 55;
    bits_max = 65;
    sink_blocks_min = 1;
    sink_blocks_max = 1;
    pitch = 0.002;
    local_fraction = 1.0 }

let i4 =
  { Gen.name = "I4";
    seed = 104;
    die = die_large;
    n_blocks = 36;
    partners_near = 4;
    far_partner_prob = 1.0;
    block_size = 0.3;
    n_groups = 403;
    bits_min = 4;
    bits_max = 12;
    sink_blocks_min = 1;
    sink_blocks_max = 4;
    pitch = 0.002;
    local_fraction = 0.78 }

let i5 =
  { Gen.name = "I5";
    seed = 105;
    die = die_large;
    n_blocks = 36;
    partners_near = 4;
    far_partner_prob = 1.0;
    block_size = 0.3;
    n_groups = 933;
    bits_min = 1;
    bits_max = 3;
    sink_blocks_min = 1;
    sink_blocks_max = 1;
    pitch = 0.002;
    local_fraction = 0.30 }

let all = [ i1; i2; i3; i4; i5 ]

let by_name name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun s -> String.lowercase_ascii s.Gen.name = target) all

let small ?(seed = 7) () =
  Gen.generate
    { Gen.name = "small";
      seed;
      die = die_small;
      n_blocks = 9;
      partners_near = 3;
      far_partner_prob = 0.5;
      block_size = 0.2;
      n_groups = 12;
      bits_min = 2;
      bits_max = 8;
      sink_blocks_min = 1;
      sink_blocks_max = 3;
      pitch = 0.002;
      local_fraction = 0.5 }

let tiny ?(seed = 11) () =
  Gen.generate
    { Gen.name = "tiny";
      seed;
      die = die_small;
      n_blocks = 4;
      partners_near = 2;
      far_partner_prob = 0.0;
      block_size = 0.2;
      n_groups = 4;
      bits_min = 2;
      bits_max = 4;
      sink_blocks_min = 1;
      sink_blocks_max = 2;
      pitch = 0.002;
      local_fraction = 0.5 }
