open Operon_util
open Operon_geom

type spec = {
  name : string;
  seed : int;
  die : Rect.t;
  n_blocks : int;
  partners_near : int;
  far_partner_prob : float;
  block_size : float;
  n_groups : int;
  bits_min : int;
  bits_max : int;
  sink_blocks_min : int;
  sink_blocks_max : int;
  pitch : float;
  local_fraction : float;
}

let clamp_point (die : Rect.t) { Point.x; y } =
  let cx = Float.max die.Rect.xmin (Float.min die.Rect.xmax x) in
  let cy = Float.max die.Rect.ymin (Float.min die.Rect.ymax y) in
  Point.make cx cy

let uniform_in rng lo hi = if hi <= lo then lo else lo + Prng.int rng (hi - lo + 1)

(* Macro blocks on a jittered grid — the floorplan the buses run between. *)
let block_centers rng spec =
  let cols = int_of_float (Float.ceil (sqrt (float_of_int spec.n_blocks))) in
  let rows = (spec.n_blocks + cols - 1) / cols in
  let w = Rect.width spec.die and h = Rect.height spec.die in
  let dx = w /. float_of_int cols and dy = h /. float_of_int rows in
  Array.init spec.n_blocks (fun b ->
      let c = b mod cols and r = b / cols in
      let jitter extent = Prng.float_range rng (-0.25 *. extent) (0.25 *. extent) in
      clamp_point spec.die
        (Point.make
           (spec.die.Rect.xmin +. ((float_of_int c +. 0.5) *. dx) +. jitter dx)
           (spec.die.Rect.ymin +. ((float_of_int r +. 0.5) *. dy) +. jitter dy)))

(* Sparse connectivity: each block talks to its nearest neighbours plus
   the occasional chip-crossing partner — quasi-planar corridors keep
   waveguide crossing counts realistic. *)
let partner_lists rng spec centers =
  let n = Array.length centers in
  Array.init n (fun b ->
      let by_distance =
        Array.init n Fun.id |> Array.to_list
        |> List.filter (fun o -> o <> b)
        |> List.sort (fun p q ->
               Float.compare
                 (Point.l2_sq centers.(b) centers.(p))
                 (Point.l2_sq centers.(b) centers.(q)))
      in
      let near = List.filteri (fun i _ -> i < spec.partners_near) by_distance in
      let far =
        if n > spec.partners_near + 1 && Prng.float rng 1.0 < spec.far_partner_prob
        then begin
          (* a partner from the far half of the distance ranking *)
          let tail = List.filteri (fun i _ -> i >= List.length by_distance / 2) by_distance in
          match tail with [] -> [] | l -> [ List.nth l (Prng.int rng (List.length l)) ]
        end
        else []
      in
      Array.of_list (near @ far))

(* Bus pins fan out from an anchor at a regular pitch; rows wrap every 32
   bits so wide buses stay compact. *)
let bus_pin die anchor pitch bit =
  let row = bit / 32 and col = bit mod 32 in
  clamp_point die
    (Point.add anchor
       (Point.make (float_of_int col *. pitch) (float_of_int row *. pitch)))

let generate spec =
  if spec.n_groups <= 0 then invalid_arg "Gen.generate: need at least one group";
  if spec.n_blocks < 2 then invalid_arg "Gen.generate: need at least two blocks";
  if spec.bits_min < 1 || spec.bits_max < spec.bits_min then
    invalid_arg "Gen.generate: bad bits range";
  let rng = Prng.create spec.seed in
  let centers = block_centers rng spec in
  let partners = partner_lists rng spec centers in
  let anchor_in_block rng b =
    let off () = Prng.float_range rng (-0.5 *. spec.block_size) (0.5 *. spec.block_size) in
    clamp_point spec.die (Point.add centers.(b) (Point.make (off ()) (off ())))
  in
  let groups =
    Array.init spec.n_groups (fun gi ->
        let bits_count = uniform_in rng spec.bits_min spec.bits_max in
        let src_block = Prng.int rng spec.n_blocks in
        let n_sink_blocks = uniform_in rng spec.sink_blocks_min spec.sink_blocks_max in
        let choices = partners.(src_block) in
        let pick_sink_block () =
          if Array.length choices = 0 then (src_block + 1) mod spec.n_blocks
          else begin
            let near_count = Stdlib.min spec.partners_near (Array.length choices) in
            if Prng.float rng 1.0 < spec.local_fraction
               || near_count = Array.length choices
            then choices.(Prng.int rng near_count)
            else
              (* a chip-crossing corridor *)
              choices.(near_count + Prng.int rng (Array.length choices - near_count))
          end
        in
        let sink_blocks = Array.init n_sink_blocks (fun _ -> pick_sink_block ()) in
        let src_anchor = anchor_in_block rng src_block in
        let sink_anchors = Array.map (fun b -> anchor_in_block rng b) sink_blocks in
        let bits =
          Array.init bits_count (fun b ->
              let source = bus_pin spec.die src_anchor spec.pitch b in
              let sinks =
                Array.map (fun anchor -> bus_pin spec.die anchor spec.pitch b) sink_anchors
              in
              Operon.Signal.bit ~source ~sinks)
        in
        Operon.Signal.group ~name:(Printf.sprintf "%s_g%d" spec.name gi) ~bits)
  in
  Operon.Signal.design ~die:spec.die ~groups

let describe spec =
  Printf.sprintf
    "%s: %d groups over %d blocks (%d near partners, %.0f%% far), %d-%d bits, \
     %d-%d sink blocks, die %.1fx%.1f cm"
    spec.name spec.n_groups spec.n_blocks spec.partners_near
    (100.0 *. spec.far_partner_prob) spec.bits_min spec.bits_max
    spec.sink_blocks_min spec.sink_blocks_max (Rect.width spec.die)
    (Rect.height spec.die)
