(** Synthetic industrial-style benchmark generation.

    The paper's I1-I5 cases are proprietary industrial designs up-scaled
    to centimetre dimensions; only their #Net statistics are published.
    This generator reproduces their structure: a floorplan of macro
    blocks on a jittered grid, a {e sparse corridor graph} connecting
    each block to its nearest neighbours (plus occasional chip-crossing
    partners — real bus traffic is not all-to-all, and quasi-planar
    corridors keep waveguide crossing counts at realistic levels), and
    signal groups as parallel buses running from a source block to one or
    more partner blocks with pins at a regular pitch. All randomness
    flows through the seeded {!Operon_util.Prng}, so every case is
    reproducible. *)

open Operon_geom

type spec = {
  name : string;
  seed : int;
  die : Rect.t;  (** placement area, cm *)
  n_blocks : int;  (** macro blocks on the floorplan grid *)
  partners_near : int;  (** nearest-neighbour corridors per block *)
  far_partner_prob : float;  (** chance of one extra chip-crossing corridor *)
  block_size : float;  (** anchor scatter within a block, cm *)
  n_groups : int;
  bits_min : int;
  bits_max : int;  (** bits per group, uniform *)
  sink_blocks_min : int;
  sink_blocks_max : int;  (** destination blocks per group *)
  pitch : float;  (** pin pitch inside a bus row, cm *)
  local_fraction : float;
      (** share of sink picks restricted to the nearest partners *)
}

val generate : spec -> Operon.Signal.design
(** Deterministic in [spec.seed]. Pins are clamped inside the die. *)

val describe : spec -> string
