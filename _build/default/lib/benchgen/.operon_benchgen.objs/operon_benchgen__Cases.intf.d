lib/benchgen/cases.mli: Gen Operon
