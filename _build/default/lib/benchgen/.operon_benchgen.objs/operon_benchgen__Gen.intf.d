lib/benchgen/gen.mli: Operon Operon_geom Rect
