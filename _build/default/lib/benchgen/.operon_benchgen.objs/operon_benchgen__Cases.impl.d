lib/benchgen/cases.ml: Gen List Operon_geom Rect String
