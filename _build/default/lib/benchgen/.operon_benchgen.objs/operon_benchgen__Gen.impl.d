lib/benchgen/gen.ml: Array Float Fun List Operon Operon_geom Operon_util Point Printf Prng Rect Stdlib
