(* WDM placement and network-flow sharing — the paper's Figure 6/7 story.

     dune exec examples/wdm_sharing.exe

   Three 20-bit parallel connections would naively need three WDM
   waveguides; the sweep placement packs what it can and the min-cost
   max-flow re-assignment shows two 32-channel waveguides suffice, with
   one connection split channel-wise across both (Fig. 6b). Then the same
   machinery runs on a realistic corridor of mixed-width buses. *)

open Operon_geom
open Operon_optical
open Operon

let pt = Point.make

let conn id net ~y ~x0 ~len ~bits =
  { Wdm.id; net; seg = Segment.make (pt x0 y) (pt (x0 +. len) y); bits }

let show_result label (r : Assign.result) =
  Printf.printf "%s\n" label;
  Printf.printf "  initial WDMs: %d, final WDMs: %d (-%.1f%%)\n" r.Assign.initial_count
    r.Assign.final_count
    (100.0 *. Assign.reduction_ratio r);
  Array.iteri
    (fun ci flows ->
      let parts =
        List.map (fun (w, bits) -> Printf.sprintf "%d ch on WDM %d" bits w) flows
      in
      Printf.printf "  connection %d -> %s\n" ci (String.concat " + " parts))
    r.Assign.flows;
  Array.iteri
    (fun w t ->
      Printf.printf "  WDM %d: %d/%d channels, span %.2f cm\n" w t.Wdm.used
        t.Wdm.capacity (Wdm.track_length t))
    r.Assign.tracks

let () =
  let params = Params.default in

  (* --- the paper's Fig. 6 example --- *)
  let conns =
    [| conn 0 0 ~y:1.00 ~x0:0.0 ~len:3.0 ~bits:20;
       conn 1 1 ~y:1.02 ~x0:0.5 ~len:3.0 ~bits:20;
       conn 2 2 ~y:1.04 ~x0:1.0 ~len:3.0 ~bits:20 |]
  in
  let placement = Wdm_place.place params conns in
  Printf.printf "Fig. 6: three 20-bit connections, capacity %d\n"
    params.Params.wdm_capacity;
  Printf.printf "  sweep placement used %d WDMs\n" (Wdm_place.track_count placement);
  show_result "  after min-cost max-flow re-assignment:" (Assign.run params placement);

  (* --- a denser corridor --- *)
  let rng = Operon_util.Prng.create 7 in
  let corridor =
    Array.init 12 (fun i ->
        conn i i
          ~y:(1.0 +. (0.01 *. float_of_int i))
          ~x0:(Operon_util.Prng.float rng 1.0)
          ~len:(2.0 +. Operon_util.Prng.float rng 2.0)
          ~bits:(4 + Operon_util.Prng.int rng 12))
  in
  let placement2 = Wdm_place.place params corridor in
  let moved = Wdm_place.legalize params placement2.Wdm_place.tracks in
  Printf.printf "\ncorridor of 12 mixed-width buses:\n";
  Printf.printf "  sweep placement: %d WDMs (%d legalization moves)\n"
    (Wdm_place.track_count placement2)
    moved;
  let r = Assign.run params placement2 in
  Printf.printf "  after assignment: %d WDMs (-%.1f%%), displacement %.4f cm-bits\n"
    r.Assign.final_count
    (100.0 *. Assign.reduction_ratio r)
    r.Assign.displacement_cost
