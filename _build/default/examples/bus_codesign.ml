(* The paper's Figure 5 walk-through: enumerate the optical-electrical
   co-design candidates of one multi-pin hyper net and print the whole
   non-dominated list with their conversion devices, power and loss.

     dune exec examples/bus_codesign.exe

   The hyper net mirrors Fig. 5(a): a driving hyper pin (1) and sink
   hyper pins (3, 4) joined through a Steiner point (2). The printed
   candidates correspond to Fig. 5(c): fully-optical, two hybrids and the
   all-electrical fallback. *)

open Operon_geom
open Operon_optical
open Operon_steiner
open Operon

let pt = Point.make

let () =
  let params = Params.default in
  (* hyper pins: root driver far north, two sinks south-east/south-west *)
  let centers = [| pt 0.0 2.0; pt (-1.2) 0.0; pt 1.2 0.0 |] in
  let pins =
    Array.mapi
      (fun i c ->
        { Hypernet.center = c; pin_count = 8; source_count = (if i = 0 then 8 else 0) })
      centers
  in
  let hnet = Hypernet.make ~id:0 ~group:0 ~bits:8 ~pins in

  Printf.printf "hyper net: %d bits, %d hyper pins\n" hnet.Hypernet.bits
    (Hypernet.pin_count hnet);
  Printf.printf "  driver at %s, sinks at %s and %s\n\n"
    (Format.asprintf "%a" Point.pp centers.(0))
    (Format.asprintf "%a" Point.pp centers.(1))
    (Format.asprintf "%a" Point.pp centers.(2));

  (* Baseline topologies (BI1S and friends). *)
  let baselines = Bi1s.baselines (Hypernet.centers hnet) ~root:0 in
  Printf.printf "baseline topologies: %d\n" (List.length baselines);
  List.iteri
    (fun i topo ->
      Printf.printf "  #%d: %d nodes, L2 length %.3f cm, %d bends\n" i
        (Topology.node_count topo)
        (Topology.length Topology.L2 topo)
        (Topology.bends topo))
    baselines;

  (* Co-design enumeration over all baselines (Fig. 5b -> 5c). *)
  let cands = Codesign.for_hypernet params hnet in
  Printf.printf "\nnon-dominated co-design candidates (Fig. 5c):\n";
  Printf.printf "%3s %8s %6s %6s %9s %9s  %s\n" "#" "power" "n_mod" "n_det" "copper" "loss(dB)"
    "kind";
  List.iteri
    (fun i (c : Candidate.t) ->
      let kind =
        if c.Candidate.pure_electrical then "EEE (all electrical)"
        else if Array.length c.Candidate.elec_segments = 0 then "OOO (all optical)"
        else "hybrid"
      in
      Printf.printf "%3d %8.3f %6d %6d %8.2fcm %9.2f  %s\n" i c.Candidate.power
        c.Candidate.n_mod c.Candidate.n_det c.Candidate.elec_wirelength
        c.Candidate.max_intrinsic_loss kind)
    cands;

  (* How the trade-off moves with distance: scale the same net up. *)
  Printf.printf "\npower of best candidate vs die scale (conversion amortization):\n";
  List.iter
    (fun scale ->
      let scaled = Array.map (Point.scale scale) centers in
      let pins =
        Array.mapi
          (fun i c ->
            { Hypernet.center = c; pin_count = 8; source_count = (if i = 0 then 8 else 0) })
          scaled
      in
      let h = Hypernet.make ~id:0 ~group:0 ~bits:8 ~pins in
      match Codesign.for_hypernet params h with
      | [] -> ()
      | best :: _ ->
          Printf.printf "  scale %4.1fx: best %8.3f (%s)\n" scale best.Candidate.power
            (if best.Candidate.pure_electrical then "electrical"
             else if Array.length best.Candidate.elec_segments = 0 then "optical"
             else "hybrid"))
    [ 0.1; 0.25; 0.5; 1.0; 2.0 ]
