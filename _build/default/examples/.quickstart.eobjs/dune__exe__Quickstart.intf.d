examples/quickstart.mli:
