examples/quickstart.ml: Array Assign Baseline Candidate Flow Hypernet Operon Operon_geom Operon_optical Operon_util Params Point Printf Processing Rect Selection Signal
