examples/wdm_sharing.ml: Array Assign List Operon Operon_geom Operon_optical Operon_util Params Point Printf Segment String Wdm Wdm_place
