examples/full_backend.mli:
