examples/hotspot_map.ml: Baseline Cases Flow Gen Hotspot Operon Operon_benchgen Operon_geom Operon_optical Operon_util Params Printf Prng Selection Signal
