examples/hotspot_map.mli:
