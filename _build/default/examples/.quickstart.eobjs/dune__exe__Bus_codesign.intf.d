examples/bus_codesign.mli:
