examples/bus_codesign.ml: Array Bi1s Candidate Codesign Format Hypernet List Operon Operon_geom Operon_optical Operon_steiner Params Point Printf Topology
