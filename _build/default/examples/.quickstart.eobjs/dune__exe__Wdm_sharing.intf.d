examples/wdm_sharing.mli:
