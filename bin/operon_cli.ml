(* OPERON command-line driver.

   Subcommands:
     run      - full flow on a named case (I1..I5, small, tiny)
     stats    - signal-processing statistics (#Net/#HNet/#HPin)
     splitter - Y-branch cascade table (the Fig. 3b simulation)
     wdm      - WDM placement + assignment summary (Fig. 8 datapoint)
     serve    - batch synthesis service over NDJSON on stdin/stdout *)

open Cmdliner
open Operon
open Operon_benchgen

let design_of_case name seed =
  match Cases.by_name name with
  | Some spec -> Some (Gen.generate { spec with Gen.seed = (match seed with Some s -> s | None -> spec.Gen.seed) })
  | None -> (
      match String.lowercase_ascii name with
      | "small" -> Some (Cases.small ?seed ())
      | "tiny" -> Some (Cases.tiny ?seed ())
      | "split" -> Some (Cases.split ?seed ())
      | _ -> (
          match Cases.tier_by_name name with
          | Some tier ->
              let spec = tier.Cases.t_spec in
              Some
                (Gen.generate
                   { spec with
                     Gen.seed = (match seed with Some s -> s | None -> spec.Gen.seed)
                   })
          | None -> None))

let case_arg =
  let doc = "Benchmark case: I1..I5, small, tiny, split, or a scale tier (t10k, t30k, t100k)." in
  Arg.(value & opt string "small" & info [ "case"; "c" ] ~docv:"CASE" ~doc)

let seed_arg =
  let doc = "Override the case's deterministic seed (positive integer)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

(* Kept as a raw string so a typo'd engine name produces our one-line
   usage error and exit code 2, not Cmdliner's parse failure (124). *)
let mode_arg =
  let doc = "Candidate selection engine: lr (fast, default) or ilp (exact)." in
  Arg.(value & opt string "lr" & info [ "mode"; "m" ] ~docv:"MODE" ~doc)

let budget_arg =
  let doc = "ILP wall-clock budget in seconds." in
  Arg.(value & opt float 60.0 & info [ "ilp-budget" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the per-hypernet candidate generation (1 = \
     sequential; 0 = one per core). Results are bit-identical to \
     sequential runs."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let trace_arg =
  let doc = "Print the per-stage wall-clock/counter report of the pipeline." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let strict_arg =
  let doc =
    "Fail fast on the first pipeline fault instead of degrading \
     gracefully (quarantine/fallback)."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let solver_core_arg =
  let doc =
    "LP core behind ILP selection: sparse (revised simplex, default) or \
     dense (the pre-redesign tableau, kept for parity runs). Selections \
     are identical either way; only the solve time differs."
  in
  Arg.(value & opt string "sparse" & info [ "solver-core" ] ~docv:"CORE" ~doc)

let no_cache_arg =
  let doc =
    "Disable the precomputed crossing-matrix cache and recompute \
     crossing geometry per query. Results are bit-identical; selection \
     is slower. Mainly for benchmarking and debugging."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let inject_arg =
  let doc =
    "Inject a deterministic fault at STAGE:NET:KIND (net may be * for \
     any; kind is one of injected, crash, capacity, budget, validation). \
     Repeatable; merged with the $(b,OPERON_FAULTS) environment \
     variable (comma-separated specs)."
  in
  Arg.(value & opt_all string []
       & info [ "inject-fault" ] ~docv:"STAGE:NET:KIND" ~doc)

let mutate_arg =
  let doc =
    "Displace this fraction of signal groups (ECO perturbation) before \
     synthesis. Deterministic given $(b,--mutate-seed)."
  in
  Arg.(value & opt (some float) None & info [ "mutate" ] ~docv:"RATIO" ~doc)

let mutate_seed_arg =
  let doc = "PRNG seed of the $(b,--mutate) perturbation." in
  Arg.(value & opt int 1 & info [ "mutate-seed" ] ~docv:"SEED" ~doc)

let eco_from_arg =
  let doc =
    "Incremental (ECO) run: read the baseline design from a previous \
     $(b,operon export) file, prepare it, then re-prepare the current \
     design against it — only changed hyper nets and their interaction \
     closure are recomputed. The result is bit-identical to a cold run."
  in
  Arg.(value & opt (some string) None
       & info [ "eco-from" ] ~docv:"EXPORT.json" ~doc)

let thermal_map_arg =
  let doc =
    "Thermal-reliability scenario: load a die temperature map (the \
     $(b,operon thermal-map) text format) and sweep selection over the \
     $(b,--thermal-weights) ladder, exporting the power/margin Pareto \
     front. Weight 0 reproduces the plain flow bit for bit."
  in
  Arg.(value & opt (some string) None
       & info [ "thermal-map" ] ~docv:"MAP.txt" ~doc)

let thermal_weights_arg =
  let doc =
    "Comma-separated thermal objective-weight ladder (default \
     0,0.5,1,2,4,8). Requires $(b,--thermal-map); weights must be \
     finite and non-negative."
  in
  Arg.(value & opt (some string) None
       & info [ "thermal-weights" ] ~docv:"W1,W2,.." ~doc)

let partition_arg =
  let doc =
    "Hierarchical partition-and-route: off (default, the flat flow), \
     auto (pick a region count from the design size, ~1024 nets per \
     region), or an explicit region count N. Regions are selected \
     independently on the worker pool and the severed corridor is \
     stitched by a bounded fix-up pass; when the cut severs no \
     interacting pairs an ILP-mode partitioned run is bit-identical to \
     the flat one at any $(b,--jobs)."
  in
  Arg.(value & opt string "off" & info [ "partition" ] ~docv:"off|auto|N" ~doc)

(* --- validation: one-line diagnostic on stderr, exit code 2 --- *)

let fail_usage fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("operon: " ^ msg);
      exit 2)
    fmt

let validate_mode s =
  match String.lowercase_ascii s with
  | "lr" -> Flow.Lr
  | "ilp" -> Flow.Ilp
  | other -> fail_usage "unknown --mode %S (expected lr or ilp)" other

let validate_solver_core s =
  match Operon_solver.Solver.core_of_name (String.lowercase_ascii s) with
  | Some core -> core
  | None -> fail_usage "unknown --solver-core %S (expected sparse or dense)" s

let validate_jobs jobs =
  if jobs < 0 then fail_usage "--jobs must be >= 0 (got %d)" jobs;
  jobs

let validate_seed = function
  | Some s when s <= 0 -> fail_usage "--seed must be positive (got %d)" s
  | seed -> seed

(* A typo'd --inject-fault is a usage error (exit 2); a typo'd
   OPERON_FAULTS token is warned about by name and skipped, mirroring the
   bench harness's OPERON_ILP_BUDGET policy — the variable may linger in
   an environment that never meant it for this invocation, and silently
   injecting nothing would hide the typo. *)
let validate_injections specs =
  let from_env =
    match Sys.getenv_opt "OPERON_FAULTS" with
    | Some s when String.trim s <> "" ->
        let injections, bad = Operon_engine.Fault.injections_of_string_lenient s in
        List.iter
          (fun (token, msg) ->
            Printf.eprintf
              "operon: ignoring malformed OPERON_FAULTS token %S: %s\n%!" token msg)
          bad;
        injections
    | _ -> []
  in
  match Operon_engine.Fault.injections_of_string (String.concat "," specs) with
  | Ok injections -> from_env @ injections
  | Error msg -> fail_usage "bad --inject-fault spec: %s" msg

(* Thermal scenario of a run: both flags validate to one-line exit-2
   diagnostics naming the offending value, per the CLI's usage-error
   convention. *)
let validate_thermal thermal_map thermal_weights =
  let weights =
    match thermal_weights with
    | None -> Flow.Config.default_thermal_weights
    | Some s ->
        if thermal_map = None then
          fail_usage "--thermal-weights requires --thermal-map";
        let toks =
          String.split_on_char ',' s |> List.map String.trim
          |> List.filter (fun t -> t <> "")
        in
        if toks = [] then fail_usage "--thermal-weights %S lists no weights" s;
        toks
        |> List.map (fun tok ->
               match float_of_string_opt tok with
               | Some w when Float.is_finite w && w >= 0.0 -> w
               | Some w ->
                   fail_usage
                     "--thermal-weights value %g out of range (must be finite \
                      and >= 0)"
                     w
               | None -> fail_usage "--thermal-weights has bad value %S" tok)
        |> Array.of_list
  in
  match thermal_map with
  | None -> None
  | Some path -> (
      match Operon_thermal.Thermal_map.load path with
      | Ok map -> Some { Flow.Config.map; weights }
      | Error msg -> fail_usage "--thermal-map %s: %s" path msg)

(* "off" and "auto" by keyword; anything else must be a whole region
   count >= 1 (1 is legal and means the flat flow — the activation
   threshold lives in [Flow.resolve_partition]). *)
let validate_partition s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Flow.Config.Off
  | "auto" -> Flow.Config.Auto
  | t -> (
      match int_of_string_opt t with
      | Some r when r >= 1 -> Flow.Config.Regions r
      | Some r -> fail_usage "--partition region count must be >= 1 (got %d)" r
      | None -> fail_usage "bad --partition %S (expected off, auto or N)" s)

let make_config ?(no_cache = false) ?(solver_core = "sparse") ?thermal
    ?partition params mode budget jobs strict inject_specs =
  let jobs = validate_jobs jobs in
  let jobs = if jobs = 0 then Operon_util.Executor.default_jobs () else jobs in
  Flow.Config.make ~mode:(validate_mode mode) ~ilp_budget:budget ~jobs ~strict
    ~injections:(validate_injections inject_specs) ~cache:(not no_cache)
    ~solver_core:(validate_solver_core solver_core) ?thermal ?partition params

let make_runctx ?no_cache params mode budget jobs strict inject_specs =
  let cfg = make_config ?no_cache params mode budget jobs strict inject_specs in
  Operon_engine.Runctx.create ~seed:cfg.Flow.Config.seed
    (Flow.Config.to_runctx_config cfg)

let apply_mutate mutate mutate_seed design =
  match mutate with
  | None -> design
  | Some ratio ->
      if ratio <= 0.0 || ratio > 1.0 then
        fail_usage "--mutate must be in (0, 1] (got %g)" ratio;
      if mutate_seed <= 0 then
        fail_usage "--mutate-seed must be positive (got %d)" mutate_seed;
      Mutate.design ~ratio ~seed:mutate_seed design

(* The run/export back half: cold synthesis, or — with --eco-from — an
   incremental re-preparation against the design recorded in a previous
   export. Either way the flow result is bit-identical to a cold run of
   [design]; the ECO path only reports what it saved, on stderr. *)
let synthesize_cli ?eco_from config design =
  match eco_from with
  | None -> Flow.synthesize config design
  | Some path -> (
      match Operon_service.Design_io.load_export path with
      | Error msg -> fail_usage "--eco-from: %s" msg
      | Ok baseline ->
          let prev = Flow.prepare config baseline in
          let p = Flow.prepare_eco ~prev config design in
          (match p.Flow.p_eco with
           | Some e when e.Flow.cold_fallback ->
               Printf.eprintf
                 "eco: cold fallback (baseline not reusable); all %d nets \
                  recomputed\n%!"
                 e.Flow.nets_recomputed
           | Some e ->
               Printf.eprintf
                 "eco: reused %d nets, recomputed %d (dirty %d, interaction \
                  %d, added %d, removed %d), crossing rows reused %d\n%!"
                 e.Flow.nets_reused e.Flow.nets_recomputed e.Flow.dirty
                 e.Flow.interaction_dirty e.Flow.added e.Flow.removed
                 e.Flow.xrows_reused
           | None -> ());
          Flow.select_prepared config p)

let print_trace result =
  print_endline
    (Report.stage_table ~title:"pipeline stages" result.Flow.trace)

let print_degradation result =
  match Report.degradation_summary result with
  | Some summary -> print_string summary
  | None -> ()

let with_design name seed f =
  match design_of_case name seed with
  | None ->
      Printf.eprintf "unknown case %S (try I1..I5, small, tiny, split, t10k..t100k)\n" name;
      exit 2
  | Some design -> (
      (* Under --strict a pipeline fault aborts the run; report it as a
         one-line structured diagnostic rather than a raw backtrace. *)
      try f design
      with Operon_engine.Fault.Error fault ->
        Printf.eprintf "operon: fault: %s\n"
          (Operon_engine.Fault.to_string fault);
        if fault.Operon_engine.Fault.backtrace <> "" then
          prerr_string fault.Operon_engine.Fault.backtrace;
        exit 1)

let run_cmd =
  let run case seed mode budget jobs trace strict inject no_cache solver_core
      mutate mutate_seed eco_from thermal_map thermal_weights partition =
    let seed = validate_seed seed in
    let thermal = validate_thermal thermal_map thermal_weights in
    let partition = validate_partition partition in
    with_design case seed (fun design ->
        let design = apply_mutate mutate mutate_seed design in
        let params = Operon_optical.Params.default in
        let config =
          make_config ~no_cache ~solver_core ?thermal ~partition params mode
            budget jobs strict inject
        in
        let result = synthesize_cli ?eco_from config design in
        let nets, hnets, hpins = Processing.stats result.Flow.hnets in
        Printf.printf "case %s: #Net=%d #HNet=%d #HPin=%d\n" case nets hnets hpins;
        Printf.printf "electrical baseline power: %.2f\n"
          (Baseline.electrical_power params design);
        let g = Baseline.glow result.Flow.ctx.Selection.params result.Flow.hnets in
        Printf.printf
          "GLOW-like optical power:   %.2f (optical %d, fallback %d, undetectable %d)\n"
          g.Baseline.power g.Baseline.optical_nets g.Baseline.electrical_nets
          g.Baseline.underestimated;
        Printf.printf "OPERON power:              %.2f (%s, %.2fs select)\n"
          result.Flow.power
          (match result.Flow.mode with Flow.Lr -> "LR" | Flow.Ilp -> "ILP")
          result.Flow.select_seconds;
        (match result.Flow.ilp with
         | Some r ->
             Printf.printf
               "  ILP: components=%d timed_out=%d nodes=%d pivots=%d \
                refactorizations=%d proven=%b (%s core)\n"
               r.Ilp_select.components r.Ilp_select.timed_out r.Ilp_select.nodes
               r.Ilp_select.pivots r.Ilp_select.refactorizations
               r.Ilp_select.proven
               (Operon_solver.Solver.core_name config.Flow.Config.solver_core)
         | None -> ());
        (match result.Flow.lr with
         | Some r ->
             Printf.printf "  LR: iterations=%d demoted=%d violation=%.3f dB\n"
               r.Lr_select.iterations r.Lr_select.demoted r.Lr_select.final_violation
         | None -> ());
        Printf.printf "WDM: connections=%d placed=%d final=%d (-%.1f%%)\n"
          (Array.length result.Flow.placement.Wdm_place.conns)
          result.Flow.assignment.Assign.initial_count
          result.Flow.assignment.Assign.final_count
          (100.0 *. Assign.reduction_ratio result.Flow.assignment);
        let s =
          Signoff.run result.Flow.ctx.Selection.params result.Flow.ctx
            result.Flow.choice result.Flow.placement result.Flow.assignment
        in
        Printf.printf
          "signoff: %d paths, worst loss %.2f dB, %d violations, detour x%.2f, \
           %d waveguide crossings\n"
          s.Signoff.paths_checked s.Signoff.worst_loss_db s.Signoff.violations
          s.Signoff.mean_detour_ratio s.Signoff.waveguide_crossings;
        (match result.Flow.partition with
         | Some p ->
             Printf.printf
               "partition: %d regions (largest %d), corridor %d nets, cut \
                %d/%d pairs (%d components), stitch revised %d \
                (plan %.3fs, stitch %.3fs)\n"
               p.Flow.pt_regions p.Flow.pt_largest_region
               p.Flow.pt_corridor_nets p.Flow.pt_cut_pairs
               p.Flow.pt_total_pairs p.Flow.pt_boundary_components
               p.Flow.pt_stitch_changed p.Flow.pt_plan_seconds
               p.Flow.pt_stitch_seconds
         | None -> ());
        (match Report.thermal_table result with
         | Some table -> print_endline table
         | None -> ());
        print_degradation result;
        if trace then print_trace result)
  in
  let doc = "Run the full OPERON flow on a case." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ case_arg $ seed_arg $ mode_arg $ budget_arg $ jobs_arg
          $ trace_arg $ strict_arg $ inject_arg $ no_cache_arg
          $ solver_core_arg $ mutate_arg $ mutate_seed_arg $ eco_from_arg
          $ thermal_map_arg $ thermal_weights_arg $ partition_arg)

let stats_cmd =
  let run case seed =
    let seed = validate_seed seed in
    with_design case seed (fun design ->
        let params = Operon_optical.Params.default in
        let rng = Operon_util.Prng.create 42 in
        let hnets = Processing.run rng params design in
        let nets, hn, hp = Processing.stats hnets in
        Printf.printf "#Net=%d #HNet=%d #HPin=%d groups=%d pins=%d\n" nets hn hp
          (Array.length design.Signal.groups)
          (Signal.pin_count design))
  in
  let doc = "Signal-processing statistics for a case." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ case_arg $ seed_arg)

let splitter_cmd =
  let stages_arg =
    Arg.(value & opt int 2 & info [ "stages" ] ~docv:"N" ~doc:"Cascade depth.")
  in
  let run stages =
    let params = Operon_optical.Params.default in
    let reports = Operon_optical.Splitter.cascade params ~stages in
    List.iter
      (fun r ->
        Printf.printf "stage %d: %3d outputs, %.4f of input each (%.2f dB)\n"
          r.Operon_optical.Splitter.stage r.Operon_optical.Splitter.outputs
          r.Operon_optical.Splitter.power_fraction r.Operon_optical.Splitter.loss_db)
      reports
  in
  let doc = "Cascaded Y-branch splitter power distribution (paper Fig. 3b)." in
  Cmd.v (Cmd.info "splitter" ~doc) Term.(const run $ stages_arg)

let wdm_cmd =
  let run case seed jobs trace strict inject =
    let seed = validate_seed seed in
    with_design case seed (fun design ->
        let params = Operon_optical.Params.default in
        let rc = make_runctx params "lr" 60.0 jobs strict inject in
        let result = Flow.run_ctx rc design in
        let a = result.Flow.assignment in
        Printf.printf "connections:   %d\n" (Array.length result.Flow.placement.Wdm_place.conns);
        Printf.printf "initial WDMs:  %d\n" a.Assign.initial_count;
        Printf.printf "final WDMs:    %d\n" a.Assign.final_count;
        Printf.printf "reduction:     %.1f%%\n" (100.0 *. Assign.reduction_ratio a);
        Printf.printf "displacement:  %.4f cm-bits\n" a.Assign.displacement_cost;
        print_degradation result;
        if trace then print_trace result)
  in
  let doc = "WDM placement and network-flow assignment summary (Fig. 8)." in
  Cmd.v (Cmd.info "wdm" ~doc)
    Term.(const run $ case_arg $ seed_arg $ jobs_arg $ trace_arg $ strict_arg
          $ inject_arg)

let export_cmd =
  let out_arg =
    let doc = "Output file (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let no_timings_arg =
    let doc =
      "Emit exactly the serve protocol's result payload: omit the \
       wall-clock-dependent fields (the per-stage trace and the cache \
       timing counters) and the channels block, so the document is a \
       pure function of design and configuration — byte-comparable \
       across runs and against $(b,operon serve) results."
    in
    Arg.(value & flag & info [ "no-timings" ] ~doc)
  in
  let run case seed mode budget jobs strict inject no_cache solver_core
      no_timings out mutate mutate_seed eco_from thermal_map thermal_weights
      partition =
    let seed = validate_seed seed in
    let thermal = validate_thermal thermal_map thermal_weights in
    let partition = validate_partition partition in
    with_design case seed (fun design ->
        let design = apply_mutate mutate mutate_seed design in
        let params = Operon_optical.Params.default in
        let config =
          make_config ~no_cache ~solver_core ?thermal ~partition params mode
            budget jobs strict inject
        in
        let result = synthesize_cli ?eco_from config design in
        let conns = result.Flow.placement.Wdm_place.conns in
        let plan =
          Channels.assign result.Flow.ctx.Selection.params conns result.Flow.assignment
        in
        let json =
          if no_timings then Export.flow_to_json ~timings:false result
          else Export.flow_to_json ~channels:plan result
        in
        (match Report.degradation_summary result with
         | Some summary -> prerr_string summary
         | None -> ());
        match out with
        | None -> print_endline json
        | Some path ->
            Export.write_file path json;
            Printf.printf "wrote %s (%d bytes)\n" path (String.length json))
  in
  let doc = "Run the flow and export the synthesized design as JSON." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ case_arg $ seed_arg $ mode_arg $ budget_arg $ jobs_arg
          $ strict_arg $ inject_arg $ no_cache_arg $ solver_core_arg
          $ no_timings_arg $ out_arg $ mutate_arg $ mutate_seed_arg
          $ eco_from_arg $ thermal_map_arg $ thermal_weights_arg
          $ partition_arg)

let thermal_map_cmd =
  let hotspots_arg =
    Arg.(value & opt int 6
         & info [ "hotspots" ] ~docv:"N" ~doc:"Gaussian hotspot count.")
  in
  let amplitude_arg =
    Arg.(value & opt float 25.0
         & info [ "amplitude" ] ~docv:"DEGC"
             ~doc:"Peak hotspot temperature rise above ambient, degC.")
  in
  let decay_arg =
    Arg.(value & opt float 0.15
         & info [ "decay" ] ~docv:"FRACTION"
             ~doc:"Hotspot spread as a fraction of the shorter die edge.")
  in
  let grid_arg =
    Arg.(value & opt int 24
         & info [ "grid" ] ~docv:"N" ~doc:"Grid resolution (N x N cells).")
  in
  let ambient_arg =
    Arg.(value & opt float 45.0
         & info [ "ambient" ] ~docv:"DEGC" ~doc:"Ambient temperature, degC.")
  in
  let map_seed_arg =
    Arg.(value & opt int 1
         & info [ "map-seed" ] ~docv:"SEED"
             ~doc:"PRNG seed of the hotspot placement.")
  in
  let out_arg =
    let doc = "Output file (default: stdout)." in
    Arg.(value & opt (some string) None
         & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run case seed hotspots amplitude decay grid ambient map_seed out =
    let seed = validate_seed seed in
    if hotspots < 0 then fail_usage "--hotspots must be >= 0 (got %d)" hotspots;
    if amplitude < 0.0 then
      fail_usage "--amplitude must be >= 0 (got %g)" amplitude;
    if decay <= 0.0 then fail_usage "--decay must be positive (got %g)" decay;
    if grid <= 0 then fail_usage "--grid must be positive (got %d)" grid;
    if not (Float.is_finite ambient) then
      fail_usage "--ambient must be finite (got %g)" ambient;
    if map_seed <= 0 then
      fail_usage "--map-seed must be positive (got %d)" map_seed;
    with_design case seed (fun design ->
        let rng = Operon_util.Prng.create map_seed in
        let map =
          Operon_thermal.Thermal_map.synthetic ~nx:grid ~ny:grid ~ambient
            ~hotspots ~amplitude ~decay ~die:design.Signal.die rng
        in
        let text = Operon_thermal.Thermal_map.to_string map in
        match out with
        | None -> print_string text
        | Some path ->
            Export.write_file path text;
            Printf.printf "wrote %s (%s)\n" path
              (Operon_thermal.Thermal_map.summary map))
  in
  let doc =
    "Generate a synthetic die temperature map for a case (seeded Gaussian \
     hotspots), in the text format $(b,--thermal-map) loads. The same \
     seed always produces the same map, and the %.17g text round-trip is \
     exact, so scenario runs are reproducible across machines."
  in
  Cmd.v (Cmd.info "thermal-map" ~doc)
    Term.(const run $ case_arg $ seed_arg $ hotspots_arg $ amplitude_arg
          $ decay_arg $ grid_arg $ ambient_arg $ map_seed_arg $ out_arg)

let timing_cmd =
  let run case seed mode budget jobs =
    let seed = validate_seed seed in
    with_design case seed (fun design ->
        let params = Operon_optical.Params.default in
        let rc = make_runctx params mode budget jobs false [] in
        let result = Flow.run_ctx rc design in
        let d = Operon_optical.Delay.default in
        let sel = Timing.selection d result.Flow.ctx result.Flow.choice in
        let reference = Timing.electrical_reference d result.Flow.ctx in
        Printf.printf "worst source-to-sink delay (ps):\n";
        Printf.printf "  all-electrical reference: mean %8.1f  max %8.1f\n"
          reference.Timing.mean_worst_ps reference.Timing.max_worst_ps;
        Printf.printf "  OPERON selection:         mean %8.1f  max %8.1f\n"
          sel.Timing.mean_worst_ps sel.Timing.max_worst_ps;
        Printf.printf "  speedup:                  mean %7.2fx  max %7.2fx\n"
          (reference.Timing.mean_worst_ps /. Float.max 1e-9 sel.Timing.mean_worst_ps)
          (reference.Timing.max_worst_ps /. Float.max 1e-9 sel.Timing.max_worst_ps);
        Printf.printf "  (optical/copper delay crossover: %.2f cm)\n"
          (Operon_optical.Delay.crossover_cm d))
  in
  let doc = "Delay analysis of the synthesized routes (extension)." in
  Cmd.v (Cmd.info "timing" ~doc)
    Term.(const run $ case_arg $ seed_arg $ mode_arg $ budget_arg $ jobs_arg)

let serve_cmd =
  let capacity_arg =
    let doc =
      "Bounded job-queue capacity: a submit that would exceed it is \
       rejected with a structured $(i,busy) response instead of \
       blocking the client."
    in
    Arg.(value & opt int 64 & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let registry_capacity_arg =
    let doc =
      "Cap the prepared-design registry at N entries, evicting the \
       least recently used beyond it (0 = unbounded, the default)."
    in
    Arg.(value & opt int 0 & info [ "registry-capacity" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc =
      "Fork N fault-isolated shard worker processes and consistent-hash \
       designs across them; a crashed shard is restarted with backoff \
       and its in-flight jobs are retried once on a survivor. 0 (the \
       default) serves in-process without forking."
    in
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let socket_arg =
    let doc =
      "Also listen on a Unix-domain socket at $(docv) (NDJSON, one \
       concurrent session per connection)."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc = "Also listen on loopback TCP port $(docv)." in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let run jobs capacity registry_capacity shards socket tcp =
    let jobs = validate_jobs jobs in
    let workers =
      if jobs = 0 then Operon_util.Executor.default_jobs () else jobs
    in
    if capacity < 1 then
      fail_usage "--queue-capacity must be >= 1 (got %d)" capacity;
    if registry_capacity < 0 then
      fail_usage "--registry-capacity must be >= 0 (got %d)" registry_capacity;
    if shards < 0 then fail_usage "--shards must be >= 0 (got %d)" shards;
    (match tcp with
    | Some p when p < 0 || p > 65535 ->
        fail_usage "--tcp port must be in [0, 65535] (got %d)" p
    | _ -> ());
    let registry_capacity =
      if registry_capacity = 0 then None else Some registry_capacity
    in
    let resolve ~case ~seed = design_of_case case seed in
    let params = Operon_optical.Params.default in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let listeners =
      (match socket with
      | Some path -> [ Operon_service.Transport.unix_listener path ]
      | None -> [])
      @
      match tcp with
      | Some port -> [ Operon_service.Transport.tcp_listener port ]
      | None -> []
    in
    let stdio_loop handle =
      let rec loop () =
        match input_line stdin with
        | exception End_of_file -> ()
        | line ->
            (match handle line with
            | Some response ->
                print_string response;
                print_char '\n';
                flush Stdlib.stdout
            | None -> ());
            loop ()
      in
      loop ()
    in
    if shards = 0 then begin
      (* In-process service. Sockets, when requested, share it with the
         stdio session: Service.handle_line is thread-safe. *)
      let svc =
        Operon_service.Service.create ~workers ~capacity ?registry_capacity
          ~resolve ~params ()
      in
      match listeners with
      | [] -> Operon_service.Service.serve svc stdin stdout
      | ls ->
          Operon_service.Service.start svc;
          let transport =
            Operon_service.Transport.start ~listeners:ls
              ~handle:(Operon_service.Service.handle_line svc)
              ()
          in
          Fun.protect
            ~finally:(fun () ->
              Operon_service.Transport.stop transport;
              Operon_service.Service.shutdown svc)
            (fun () ->
              stdio_loop (Operon_service.Service.handle_line svc))
    end
    else begin
      (* Fault-isolated multi-process serving. The parent must stay
         domain-free (the runtime refuses fork after any domain is
         created), so it speaks only threads: stdio loop, socket
         sessions, shard readers. *)
      let sup =
        Operon_service.Supervisor.create ~shards ~workers
          ~queue_capacity:capacity ?registry_capacity ~resolve ~params ()
      in
      Operon_service.Supervisor.start sup;
      let transport =
        match listeners with
        | [] -> None
        | ls ->
            let tr =
              Operon_service.Transport.start ~listeners:ls
                ~handle:(Operon_service.Supervisor.handle_line sup)
                ()
            in
            Operon_service.Supervisor.on_child_fork sup (fun () ->
                Operon_service.Transport.close_in_child tr);
            Some tr
      in
      Fun.protect
        ~finally:(fun () ->
          Option.iter Operon_service.Transport.stop transport;
          Operon_service.Supervisor.shutdown sup)
        (fun () ->
          stdio_loop (Operon_service.Supervisor.handle_line sup))
    end
  in
  let doc =
    "Batch synthesis service: newline-delimited JSON requests on stdin \
     (and, with $(b,--socket)/$(b,--tcp), on sockets), one response per \
     line. With $(b,--shards) N, jobs are consistent-hashed across N \
     fault-isolated forked worker processes with crash retry and \
     deadline shedding. Results are byte-identical to $(b,operon export \
     --no-timings) for the same case and options, whatever the worker \
     or shard count."
  in
  let jobs_arg =
    let doc = "Worker domains serving jobs (0 = one per core)." in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ jobs_arg $ capacity_arg $ registry_capacity_arg $ shards_arg
      $ socket_arg $ tcp_arg)

let () =
  let doc = "OPERON: optical-electrical power-efficient route synthesis" in
  let info = Cmd.info "operon" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; stats_cmd; splitter_cmd; wdm_cmd; export_cmd;
            thermal_map_cmd; timing_cmd; serve_cmd ]))
