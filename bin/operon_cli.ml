(* OPERON command-line driver.

   Subcommands:
     run      - full flow on a named case (I1..I5, small, tiny)
     stats    - signal-processing statistics (#Net/#HNet/#HPin)
     splitter - Y-branch cascade table (the Fig. 3b simulation)
     wdm      - WDM placement + assignment summary (Fig. 8 datapoint) *)

open Cmdliner
open Operon
open Operon_benchgen

let design_of_case name seed =
  match Cases.by_name name with
  | Some spec -> Some (Gen.generate { spec with Gen.seed = (match seed with Some s -> s | None -> spec.Gen.seed) })
  | None -> (
      match String.lowercase_ascii name with
      | "small" -> Some (Cases.small ?seed ())
      | "tiny" -> Some (Cases.tiny ?seed ())
      | _ -> None)

let case_arg =
  let doc = "Benchmark case: I1..I5, small, or tiny." in
  Arg.(value & opt string "small" & info [ "case"; "c" ] ~docv:"CASE" ~doc)

let seed_arg =
  let doc = "Override the case's deterministic seed." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let mode_arg =
  let doc = "Candidate selection engine: lr (fast, default) or ilp (exact)." in
  Arg.(value & opt (enum [ ("lr", Flow.Lr); ("ilp", Flow.Ilp) ]) Flow.Lr
       & info [ "mode"; "m" ] ~docv:"MODE" ~doc)

let budget_arg =
  let doc = "ILP wall-clock budget in seconds." in
  Arg.(value & opt float 60.0 & info [ "ilp-budget" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the per-hypernet candidate generation (1 = \
     sequential; 0 = one per core). Results are bit-identical to \
     sequential runs."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let trace_arg =
  let doc = "Print the per-stage wall-clock/counter report of the pipeline." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let make_runctx params mode budget jobs =
  let jobs = if jobs = 0 then Operon_util.Executor.default_jobs () else jobs in
  let config =
    { Operon_engine.Runctx.params; mode; ilp_budget = budget;
      max_cands_per_net = 10; jobs }
  in
  Operon_engine.Runctx.create ~seed:42 config

let print_trace result =
  print_endline
    (Report.stage_table ~title:"pipeline stages" result.Flow.trace)

let with_design name seed f =
  match design_of_case name seed with
  | None ->
      Printf.eprintf "unknown case %S (try I1..I5, small, tiny)\n" name;
      exit 2
  | Some design -> f design

let run_cmd =
  let run case seed mode budget jobs trace =
    with_design case seed (fun design ->
        let params = Operon_optical.Params.default in
        let rc = make_runctx params mode budget jobs in
        let result = Flow.run_ctx rc design in
        let nets, hnets, hpins = Processing.stats result.Flow.hnets in
        Printf.printf "case %s: #Net=%d #HNet=%d #HPin=%d\n" case nets hnets hpins;
        Printf.printf "electrical baseline power: %.2f\n"
          (Baseline.electrical_power params design);
        let g = Baseline.glow result.Flow.ctx.Selection.params result.Flow.hnets in
        Printf.printf
          "GLOW-like optical power:   %.2f (optical %d, fallback %d, undetectable %d)\n"
          g.Baseline.power g.Baseline.optical_nets g.Baseline.electrical_nets
          g.Baseline.underestimated;
        Printf.printf "OPERON power:              %.2f (%s, %.2fs select)\n"
          result.Flow.power
          (match mode with Flow.Lr -> "LR" | Flow.Ilp -> "ILP")
          result.Flow.select_seconds;
        (match result.Flow.ilp with
         | Some r ->
             Printf.printf
               "  ILP: components=%d timed_out=%d nodes=%d proven=%b\n"
               r.Ilp_select.components r.Ilp_select.timed_out r.Ilp_select.nodes
               r.Ilp_select.proven
         | None -> ());
        (match result.Flow.lr with
         | Some r ->
             Printf.printf "  LR: iterations=%d demoted=%d violation=%.3f dB\n"
               r.Lr_select.iterations r.Lr_select.demoted r.Lr_select.final_violation
         | None -> ());
        Printf.printf "WDM: connections=%d placed=%d final=%d (-%.1f%%)\n"
          (Array.length result.Flow.placement.Wdm_place.conns)
          result.Flow.assignment.Assign.initial_count
          result.Flow.assignment.Assign.final_count
          (100.0 *. Assign.reduction_ratio result.Flow.assignment);
        let s =
          Signoff.run result.Flow.ctx.Selection.params result.Flow.ctx
            result.Flow.choice result.Flow.placement result.Flow.assignment
        in
        Printf.printf
          "signoff: %d paths, worst loss %.2f dB, %d violations, detour x%.2f, \
           %d waveguide crossings\n"
          s.Signoff.paths_checked s.Signoff.worst_loss_db s.Signoff.violations
          s.Signoff.mean_detour_ratio s.Signoff.waveguide_crossings;
        if trace then print_trace result)
  in
  let doc = "Run the full OPERON flow on a case." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ case_arg $ seed_arg $ mode_arg $ budget_arg $ jobs_arg $ trace_arg)

let stats_cmd =
  let run case seed =
    with_design case seed (fun design ->
        let params = Operon_optical.Params.default in
        let rng = Operon_util.Prng.create 42 in
        let hnets = Processing.run rng params design in
        let nets, hn, hp = Processing.stats hnets in
        Printf.printf "#Net=%d #HNet=%d #HPin=%d groups=%d pins=%d\n" nets hn hp
          (Array.length design.Signal.groups)
          (Signal.pin_count design))
  in
  let doc = "Signal-processing statistics for a case." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ case_arg $ seed_arg)

let splitter_cmd =
  let stages_arg =
    Arg.(value & opt int 2 & info [ "stages" ] ~docv:"N" ~doc:"Cascade depth.")
  in
  let run stages =
    let params = Operon_optical.Params.default in
    let reports = Operon_optical.Splitter.cascade params ~stages in
    List.iter
      (fun r ->
        Printf.printf "stage %d: %3d outputs, %.4f of input each (%.2f dB)\n"
          r.Operon_optical.Splitter.stage r.Operon_optical.Splitter.outputs
          r.Operon_optical.Splitter.power_fraction r.Operon_optical.Splitter.loss_db)
      reports
  in
  let doc = "Cascaded Y-branch splitter power distribution (paper Fig. 3b)." in
  Cmd.v (Cmd.info "splitter" ~doc) Term.(const run $ stages_arg)

let wdm_cmd =
  let run case seed jobs trace =
    with_design case seed (fun design ->
        let params = Operon_optical.Params.default in
        let rc = make_runctx params Flow.Lr 60.0 jobs in
        let result = Flow.run_ctx rc design in
        let a = result.Flow.assignment in
        Printf.printf "connections:   %d\n" (Array.length result.Flow.placement.Wdm_place.conns);
        Printf.printf "initial WDMs:  %d\n" a.Assign.initial_count;
        Printf.printf "final WDMs:    %d\n" a.Assign.final_count;
        Printf.printf "reduction:     %.1f%%\n" (100.0 *. Assign.reduction_ratio a);
        Printf.printf "displacement:  %.4f cm-bits\n" a.Assign.displacement_cost;
        if trace then print_trace result)
  in
  let doc = "WDM placement and network-flow assignment summary (Fig. 8)." in
  Cmd.v (Cmd.info "wdm" ~doc)
    Term.(const run $ case_arg $ seed_arg $ jobs_arg $ trace_arg)

let export_cmd =
  let out_arg =
    let doc = "Output file (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run case seed mode budget jobs out =
    with_design case seed (fun design ->
        let params = Operon_optical.Params.default in
        let rc = make_runctx params mode budget jobs in
        let result = Flow.run_ctx rc design in
        let conns = result.Flow.placement.Wdm_place.conns in
        let plan =
          Channels.assign result.Flow.ctx.Selection.params conns result.Flow.assignment
        in
        let json = Export.flow_to_json ~channels:plan result in
        match out with
        | None -> print_endline json
        | Some path ->
            Export.write_file path json;
            Printf.printf "wrote %s (%d bytes)\n" path (String.length json))
  in
  let doc = "Run the flow and export the synthesized design as JSON." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ case_arg $ seed_arg $ mode_arg $ budget_arg $ jobs_arg $ out_arg)

let timing_cmd =
  let run case seed mode budget jobs =
    with_design case seed (fun design ->
        let params = Operon_optical.Params.default in
        let rc = make_runctx params mode budget jobs in
        let result = Flow.run_ctx rc design in
        let d = Operon_optical.Delay.default in
        let sel = Timing.selection d result.Flow.ctx result.Flow.choice in
        let reference = Timing.electrical_reference d result.Flow.ctx in
        Printf.printf "worst source-to-sink delay (ps):\n";
        Printf.printf "  all-electrical reference: mean %8.1f  max %8.1f\n"
          reference.Timing.mean_worst_ps reference.Timing.max_worst_ps;
        Printf.printf "  OPERON selection:         mean %8.1f  max %8.1f\n"
          sel.Timing.mean_worst_ps sel.Timing.max_worst_ps;
        Printf.printf "  speedup:                  mean %7.2fx  max %7.2fx\n"
          (reference.Timing.mean_worst_ps /. Float.max 1e-9 sel.Timing.mean_worst_ps)
          (reference.Timing.max_worst_ps /. Float.max 1e-9 sel.Timing.max_worst_ps);
        Printf.printf "  (optical/copper delay crossover: %.2f cm)\n"
          (Operon_optical.Delay.crossover_cm d))
  in
  let doc = "Delay analysis of the synthesized routes (extension)." in
  Cmd.v (Cmd.info "timing" ~doc)
    Term.(const run $ case_arg $ seed_arg $ mode_arg $ budget_arg $ jobs_arg)

let () =
  let doc = "OPERON: optical-electrical power-efficient route synthesis" in
  let info = Cmd.info "operon" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; stats_cmd; splitter_cmd; wdm_cmd; export_cmd; timing_cmd ]))
